//! Event-driven simulation of synchronous pipelines.
//!
//! Reproduces Fig. 1 of the paper: micro-batches flow forward through the
//! stages, then backward; parameters update only after every micro-batch's
//! gradient is in — no staleness. Two per-stage work orders are supported:
//!
//! * [`SyncSchedule::FillDrain`] — GPipe's order (all forwards, then all
//!   backwards), used by GPipe and RaNNC;
//! * [`SyncSchedule::OneFOneB`] — the 1F1B order (warmup forwards, then
//!   alternate backward/forward), which bounds in-flight micro-batches by
//!   the pipeline depth.
//!
//! The simulator is a deterministic discrete-event loop over per-stage
//! work queues: an item starts when its producer dependency is met and its
//! stage is free. After the last backward, replicated stages all-reduce
//! gradients and the optimizer steps.

use crate::spec::{PipelineSpec, SimResult};
use crate::PlanSpecError;
use rannc_core::PartitionPlan;
use rannc_graph::TaskGraph;
use rannc_hw::{ClusterSpec, Precision};
use rannc_verify::{CertifiedStage, CommProgram, Report};
use serde::{Deserialize, Serialize};

/// Per-stage work ordering of the synchronous schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncSchedule {
    /// GPipe-style: forward all micro-batches, then backward all.
    FillDrain,
    /// 1F1B: `pipeline_depth − stage` warmup forwards, then alternate.
    OneFOneB,
}

/// What a timeline event did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkKind {
    /// Forward pass of one micro-batch.
    Forward,
    /// Backward pass of one micro-batch.
    Backward,
}

/// One executed work item (for tests and visualization).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Stage index.
    pub stage: usize,
    /// Forward or backward.
    pub kind: WorkKind,
    /// Micro-batch index.
    pub micro: usize,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// Simulation output plus (optionally) the full timeline.
#[derive(Debug, Clone)]
pub struct SyncSimOutput {
    /// Aggregate result.
    pub result: SimResult,
    /// Per-item timeline if requested.
    pub timeline: Option<Vec<TimelineEvent>>,
}

/// Build the per-stage work order.
fn work_order(
    schedule: SyncSchedule,
    stage: usize,
    stages: usize,
    mb: usize,
) -> Vec<(WorkKind, usize)> {
    let mut seq = Vec::with_capacity(2 * mb);
    match schedule {
        SyncSchedule::FillDrain => {
            for m in 0..mb {
                seq.push((WorkKind::Forward, m));
            }
            // backward in reverse arrival order
            for m in (0..mb).rev() {
                seq.push((WorkKind::Backward, m));
            }
        }
        SyncSchedule::OneFOneB => {
            let warmup = (stages - 1 - stage).min(mb);
            let mut next_f = 0usize;
            let mut next_b = 0usize;
            for _ in 0..warmup {
                seq.push((WorkKind::Forward, next_f));
                next_f += 1;
            }
            while next_b < mb {
                if next_f < mb {
                    seq.push((WorkKind::Forward, next_f));
                    next_f += 1;
                }
                seq.push((WorkKind::Backward, next_b));
                next_b += 1;
            }
        }
    }
    seq
}

/// Per-stage issue orders for `schedule`, exactly as [`simulate_sync`]
/// executes them. Also the bridge to static verification: feed the
/// result to [`schedule_model`] and `rannc-verify` proves the schedule
/// deadlock-free without running the simulator.
pub fn sync_work_orders(
    schedule: SyncSchedule,
    stages: usize,
    mb: usize,
) -> Vec<Vec<(WorkKind, usize)>> {
    (0..stages)
        .map(|s| {
            let mut seq = work_order(schedule, s, stages, mb);
            if schedule == SyncSchedule::OneFOneB {
                seq.dedup();
            }
            seq
        })
        .collect()
}

/// Flatten a synchronous schedule into the op model that
/// `rannc_verify::verify_schedule` analyses.
pub fn schedule_model(
    schedule: SyncSchedule,
    stages: usize,
    mb: usize,
) -> rannc_verify::ScheduleModel {
    use rannc_verify::PhaseKind;
    rannc_verify::ScheduleModel {
        stages,
        microbatches: mb,
        orders: sync_work_orders(schedule, stages, mb)
            .into_iter()
            .map(|order| {
                order
                    .into_iter()
                    .map(|(kind, m)| {
                        let phase = match kind {
                            WorkKind::Forward => PhaseKind::Forward,
                            WorkKind::Backward => PhaseKind::Backward,
                        };
                        (phase, m)
                    })
                    .collect()
            })
            .collect(),
    }
}

/// Derive the per-rank communication program a plan implies under
/// `schedule`: stage-boundary activation/gradient sends and recvs in
/// the schedule's issue order, plus one gradient all-reduce per
/// replicated stage. The placement is the plan's contiguous
/// [`rannc_core::PartitionPlan::device_assignment`]; the result feeds
/// `rannc_verify::comm::verify_comm` / `verify_transfers`.
pub fn comm_program(
    g: &TaskGraph,
    plan: &PartitionPlan,
    cluster: &ClusterSpec,
    schedule: SyncSchedule,
) -> Result<CommProgram, PlanSpecError> {
    let assignment = plan
        .device_assignment(cluster)
        .map_err(PlanSpecError::BadAssignment)?;
    let model = schedule_model(schedule, plan.stages.len(), plan.microbatches);
    Ok(CommProgram::derive(g, &plan.view(), &model, &assignment))
}

/// Run every dataflow-certified check on a plan under a concrete
/// schedule: liveness-certified peak memory per device slot
/// (RV100/RV101) and the static comm-race pass (RV060–RV064).
///
/// Gradient checkpointing follows the planner's own convention
/// (enabled whenever the pipeline has more than one stage). Returns
/// the merged report plus the per-stage certified bounds.
pub fn deep_verify_plan(
    g: &TaskGraph,
    plan: &PartitionPlan,
    cluster: &ClusterSpec,
    schedule: SyncSchedule,
    precision: Precision,
) -> Result<(Report, Vec<CertifiedStage>), PlanSpecError> {
    let assignment = plan
        .device_assignment(cluster)
        .map_err(PlanSpecError::BadAssignment)?;
    let model = schedule_model(schedule, plan.stages.len(), plan.microbatches);
    let checkpointing = plan.stages.len() > 1;
    Ok(rannc_verify::verify_deep(
        g,
        &plan.view(),
        cluster,
        &model,
        &assignment,
        precision,
        checkpointing,
    ))
}

/// Run the synchronous pipeline simulation.
///
/// 1F1B backward order: in this classic schedule the backward of
/// micro-batch `m` at stage `s` depends on the backward at stage `s+1`,
/// which processes micro-batches in *ascending* order — so ascending order
/// is used for `OneFOneB` and descending (reverse arrival) for
/// `FillDrain`; both are valid synchronous schedules with identical
/// numerics.
pub fn simulate_sync(
    spec: &PipelineSpec,
    schedule: SyncSchedule,
    want_timeline: bool,
) -> SyncSimOutput {
    if let Err(e) = spec.validate() {
        panic!("invalid pipeline spec: {e}");
    }
    let s_count = spec.stages.len();
    let mb = spec.microbatches;

    let seqs = sync_work_orders(schedule, s_count, mb);

    let mut ptr = vec![0usize; s_count];
    let mut stage_free = vec![0.0f64; s_count];
    let mut fwd_end: Vec<Vec<Option<f64>>> = vec![vec![None; mb]; s_count];
    let mut bwd_end: Vec<Vec<Option<f64>>> = vec![vec![None; mb]; s_count];
    let mut busy = vec![0.0f64; s_count];
    let mut timeline = want_timeline.then(Vec::new);

    loop {
        let mut progressed = false;
        for s in 0..s_count {
            while ptr[s] < seqs[s].len() {
                let (kind, m) = seqs[s][ptr[s]];
                // dependency ready time
                let ready = match kind {
                    WorkKind::Forward => {
                        if s == 0 {
                            Some(0.0)
                        } else {
                            fwd_end[s - 1][m].map(|t| t + spec.comm_time(s - 1))
                        }
                    }
                    WorkKind::Backward => {
                        if s == s_count - 1 {
                            fwd_end[s][m]
                        } else {
                            // gradient of the cut arrives from the next stage
                            match (bwd_end[s + 1][m], fwd_end[s][m]) {
                                (Some(b), Some(f)) => Some((b + spec.comm_time(s)).max(f)),
                                _ => None,
                            }
                        }
                    }
                };
                let Some(ready) = ready else { break };
                let dur = match kind {
                    WorkKind::Forward => spec.stages[s].fwd_time,
                    WorkKind::Backward => spec.stages[s].bwd_time,
                };
                let start = stage_free[s].max(ready);
                let end = start + dur;
                match kind {
                    WorkKind::Forward => fwd_end[s][m] = Some(end),
                    WorkKind::Backward => bwd_end[s][m] = Some(end),
                }
                stage_free[s] = end;
                busy[s] += dur;
                if let Some(tl) = timeline.as_mut() {
                    tl.push(TimelineEvent {
                        stage: s,
                        kind,
                        micro: m,
                        start,
                        end,
                    });
                }
                ptr[s] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for s in 0..s_count {
        assert_eq!(
            ptr[s],
            seqs[s].len(),
            "schedule deadlocked at stage {s} item {}",
            ptr[s]
        );
    }

    let compute_end = stage_free.iter().cloned().fold(0.0, f64::max);
    let iteration = compute_end + spec.allreduce_time() + spec.optimizer_time();
    SyncSimOutput {
        result: SimResult::new(iteration, spec.batch_size, busy),
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PipelineSpec, StageSpec};
    use rannc_hw::{ClusterSpec, LinkSpec};

    fn spec(stages: usize, mb: usize, fwd: f64, bwd: f64) -> PipelineSpec {
        PipelineSpec {
            stages: (0..stages)
                .map(|_| StageSpec {
                    fwd_time: fwd,
                    bwd_time: bwd,
                    comm_to_next_bytes: 0,
                    grad_bytes: 0,
                    replicas: 1,
                    tensor_parallel: 1,
                })
                .collect(),
            microbatches: mb,
            replica_factor: 1,
            batch_size: 64,
            link: LinkSpec::nvlink(),
            cluster: ClusterSpec::v100_cluster(1),
            cost: rannc_cost::CostFactors::identity(),
        }
    }

    #[test]
    fn single_stage_is_sequential() {
        let s = spec(1, 4, 0.01, 0.02);
        let out = simulate_sync(&s, SyncSchedule::FillDrain, false);
        // 4 x (fwd+bwd), zero comm/allreduce/optimizer
        assert!((out.result.iteration_time - 4.0 * 0.03).abs() < 1e-9);
        assert!((out.result.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fill_drain_matches_closed_form() {
        // Equal stages, no comm: makespan = (MB + S - 1) * (f + b) exactly
        // when f == b (the forward and backward wavefronts tile densely).
        let (s_count, mb, f) = (4, 8, 0.01);
        let s = spec(s_count, mb, f, f);
        let out = simulate_sync(&s, SyncSchedule::FillDrain, false);
        let expect = (mb + s_count - 1) as f64 * 2.0 * f;
        assert!(
            (out.result.iteration_time - expect).abs() < 1e-9,
            "got {}, expected {expect}",
            out.result.iteration_time
        );
    }

    #[test]
    fn bubble_fraction_shrinks_with_more_microbatches() {
        let s4 = spec(4, 4, 0.01, 0.02);
        let s32 = spec(4, 32, 0.01, 0.02);
        let u4 = simulate_sync(&s4, SyncSchedule::FillDrain, false)
            .result
            .utilization;
        let u32 = simulate_sync(&s32, SyncSchedule::FillDrain, false)
            .result
            .utilization;
        assert!(u32 > u4, "u4={u4} u32={u32}");
        // theory: busy fraction = MB / (MB + S - 1)
        let theory = 32.0 / (32.0 + 3.0);
        assert!((u32 - theory).abs() < 0.05, "u32={u32} theory={theory}");
    }

    #[test]
    fn bottleneck_stage_dominates() {
        let mut s = spec(3, 8, 0.01, 0.01);
        s.stages[1].fwd_time = 0.05; // bottleneck
        s.stages[1].bwd_time = 0.05;
        let out = simulate_sync(&s, SyncSchedule::FillDrain, false);
        // at least MB * bottleneck work
        assert!(out.result.iteration_time >= 8.0 * 0.10);
    }

    #[test]
    fn one_f_one_b_no_slower_than_fill_drain_and_no_deadlock() {
        for (stages, mb) in [(2, 2), (3, 5), (4, 8), (6, 6), (1, 4)] {
            let s = spec(stages, mb, 0.01, 0.02);
            let fd = simulate_sync(&s, SyncSchedule::FillDrain, false).result;
            let ofob = simulate_sync(&s, SyncSchedule::OneFOneB, false).result;
            // same total work
            assert!(
                (fd.stage_busy.iter().sum::<f64>() - ofob.stage_busy.iter().sum::<f64>()).abs()
                    < 1e-9
            );
            // 1F1B can reorder but not change the critical path length by
            // much; sanity: within 1.5x of each other
            let ratio = ofob.iteration_time / fd.iteration_time;
            assert!((0.5..1.5).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn timeline_is_consistent() {
        let s = spec(3, 4, 0.01, 0.02);
        let out = simulate_sync(&s, SyncSchedule::FillDrain, true);
        let tl = out.timeline.unwrap();
        assert_eq!(tl.len(), 3 * 4 * 2);
        // no overlap within a stage
        for st in 0..3 {
            let mut events: Vec<_> = tl.iter().filter(|e| e.stage == st).collect();
            events.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in events.windows(2) {
                assert!(w[1].start >= w[0].end - 1e-12);
            }
        }
        // forward of (m, s) precedes forward of (m, s+1)
        for m in 0..4 {
            for st in 0..2 {
                let f0 = tl
                    .iter()
                    .find(|e| e.stage == st && e.micro == m && e.kind == WorkKind::Forward)
                    .unwrap();
                let f1 = tl
                    .iter()
                    .find(|e| e.stage == st + 1 && e.micro == m && e.kind == WorkKind::Forward)
                    .unwrap();
                assert!(f1.start >= f0.end - 1e-12);
            }
        }
        // backward of (m, s+1) precedes backward of (m, s)
        for m in 0..4 {
            for st in 0..2 {
                let b0 = tl
                    .iter()
                    .find(|e| e.stage == st && e.micro == m && e.kind == WorkKind::Backward)
                    .unwrap();
                let b1 = tl
                    .iter()
                    .find(|e| e.stage == st + 1 && e.micro == m && e.kind == WorkKind::Backward)
                    .unwrap();
                assert!(b0.start >= b1.end - 1e-12);
            }
        }
    }

    #[test]
    fn both_schedules_statically_verify_deadlock_free() {
        // the static proof and the simulator agree: every shape the
        // simulator accepts, the verifier certifies
        for (stages, mb) in [(1, 1), (2, 2), (3, 5), (4, 8), (6, 6), (1, 4)] {
            for schedule in [SyncSchedule::FillDrain, SyncSchedule::OneFOneB] {
                let model = schedule_model(schedule, stages, mb);
                let report = rannc_verify::verify_schedule(&model);
                assert!(
                    report.is_clean(),
                    "{schedule:?} {stages}x{mb}:\n{}",
                    report.render()
                );
            }
        }
    }

    #[test]
    fn schedule_model_matches_the_verify_constructors() {
        // `rannc-verify` re-derives canonical schedules so the planner
        // can certify plans without depending on this crate; pin the
        // two constructions together op for op
        for (stages, mb) in [(1, 1), (2, 2), (3, 5), (4, 8), (6, 6), (1, 4)] {
            let fd = schedule_model(SyncSchedule::FillDrain, stages, mb);
            let pinned = rannc_verify::ScheduleModel::fill_drain(stages, mb);
            assert_eq!(fd.orders, pinned.orders, "fill_drain {stages}x{mb}");
            let ob = schedule_model(SyncSchedule::OneFOneB, stages, mb);
            let pinned = rannc_verify::ScheduleModel::one_f_one_b(stages, mb);
            assert_eq!(ob.orders, pinned.orders, "one_f_one_b {stages}x{mb}");
        }
    }

    #[test]
    fn planned_mlp_deep_verifies_under_both_schedules() {
        use rannc_core::{PartitionConfig, Rannc};
        use rannc_models::{mlp_graph, MlpConfig};

        let g = mlp_graph(&MlpConfig::deep(256, 256, 8, 10));
        let cluster = ClusterSpec::v100_cluster(1);
        let plan = Rannc::new(PartitionConfig::new(64).with_k(8))
            .partition(&g, &cluster)
            .unwrap();
        for schedule in [SyncSchedule::FillDrain, SyncSchedule::OneFOneB] {
            let program = comm_program(&g, &plan, &cluster, schedule).unwrap();
            assert_eq!(program.programs.len(), plan.total_devices());
            let (report, certified) =
                deep_verify_plan(&g, &plan, &cluster, schedule, rannc_hw::Precision::FP32).unwrap();
            assert!(!report.has_errors(), "{schedule:?}:\n{}", report.render());
            assert_eq!(certified.len(), plan.stages.len());
            for c in &certified {
                assert!(c.certified_bytes <= c.capacity_bytes);
            }
        }
    }

    #[test]
    fn comm_time_delays_downstream() {
        let mut with_comm = spec(2, 2, 0.01, 0.01);
        with_comm.stages[0].comm_to_next_bytes = 250_000_000; // 10 ms on NVLink
        let fast = simulate_sync(&spec(2, 2, 0.01, 0.01), SyncSchedule::FillDrain, false);
        let slow = simulate_sync(&with_comm, SyncSchedule::FillDrain, false);
        assert!(
            slow.result.iteration_time > fast.result.iteration_time + 0.015,
            "comm not reflected: {} vs {}",
            slow.result.iteration_time,
            fast.result.iteration_time
        );
    }

    #[test]
    fn allreduce_and_optimizer_appended() {
        let mut s = spec(2, 2, 0.01, 0.01);
        s.replica_factor = 2;
        s.stages[0].grad_bytes = 1 << 30;
        s.stages[1].grad_bytes = 1 << 30;
        let base = simulate_sync(&spec(2, 2, 0.01, 0.01), SyncSchedule::FillDrain, false);
        let with = simulate_sync(&s, SyncSchedule::FillDrain, false);
        assert!(with.result.iteration_time > base.result.iteration_time + 0.05);
    }
}
