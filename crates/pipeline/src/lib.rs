//! # rannc-pipeline
//!
//! Discrete-event simulation of the training schedules the paper
//! evaluates, standing in for wall-clock measurements on the authors'
//! 32-V100 cluster:
//!
//! * **synchronous pipeline** ([`sync`]) — GPipe-style fill–drain and
//!   1F1B variants, micro-batch by micro-batch, with inter-stage
//!   transfers, per-stage replica groups, gradient all-reduce and the
//!   optimizer step (used for RaNNC and the GPipe baselines);
//! * **asynchronous 2BW pipeline** ([`async2bw`]) — PipeDream-2BW's
//!   flush-free steady state (higher utilization, parameter staleness);
//! * **pure data parallelism** ([`dataparallel`]) — per-device full
//!   replicas with gradient accumulation and ring all-reduce.
//!
//! The entry point for RaNNC plans is [`simulate_plan`], which converts a
//! [`rannc_core::PartitionPlan`] into a [`PipelineSpec`] and runs the
//! synchronous simulator.

pub mod async2bw;
pub mod dataparallel;
pub mod spec;
pub mod sync;
pub mod viz;

pub use spec::{PipelineSpec, SimResult, StageSpec};
pub use sync::{simulate_sync, SyncSchedule, TimelineEvent, WorkKind};

use rannc_core::PartitionPlan;
use rannc_graph::traverse;
use rannc_hw::ClusterSpec;
use rannc_profile::Profiler;

/// Build a [`PipelineSpec`] for a RaNNC partition plan and simulate one
/// training iteration under the synchronous fill–drain schedule.
///
/// Inter-stage communication volumes are measured on the task graph (cut
/// bytes between consecutive stage sets, scaled by the per-replica
/// micro-batch and activation precision).
pub fn simulate_plan(
    plan: &PartitionPlan,
    profiler: &Profiler<'_>,
    cluster: &ClusterSpec,
) -> SimResult {
    let spec = spec_from_plan(plan, profiler, cluster);
    simulate_sync(&spec, SyncSchedule::FillDrain, false).result
}

/// Convert a partition plan into the simulator's input description.
///
/// Stage times are **re-profiled** with the supplied profiler rather than
/// copied from the plan: the plan's structure (stage sets, replica
/// counts, micro-batches) encodes the partitioning *decisions*, while the
/// profiler is the source of truth for *costs*. This separation lets a
/// plan produced under profiling noise be evaluated by a clean oracle.
pub fn spec_from_plan(
    plan: &PartitionPlan,
    profiler: &Profiler<'_>,
    cluster: &ClusterSpec,
) -> PipelineSpec {
    let g = profiler.graph();
    let ckpt = plan.stages.len() > 1;
    let mut stages = Vec::with_capacity(plan.stages.len());
    for (i, st) in plan.stages.iter().enumerate() {
        let prof = profiler.profile_set(&st.set, st.micro_batch, plan.microbatches, ckpt);
        let comm_to_next_bytes = if i + 1 < plan.stages.len() {
            profiler.comm_bytes(&st.set, &plan.stages[i + 1].set, st.micro_batch)
        } else {
            0
        };
        // sanity: the plan's stage sets must actually be adjacent in order
        debug_assert!(
            i + 1 >= plan.stages.len()
                || comm_to_next_bytes > 0
                || !traverse::adjacent(g, &st.set, &plan.stages[i + 1].set),
        );
        stages.push(StageSpec {
            fwd_time: prof.fwd_time,
            bwd_time: prof.bwd_time,
            comm_to_next_bytes,
            grad_bytes: prof.param_elems * 4,
            replicas: st.replicas,
        });
    }
    PipelineSpec {
        stages,
        microbatches: plan.microbatches,
        replica_factor: plan.replica_factor,
        batch_size: plan.batch_size,
        link: cluster.planning_link(),
        cluster: cluster.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_core::{PartitionConfig, Rannc};
    use rannc_hw::DeviceSpec;
    use rannc_models::{mlp_graph, MlpConfig};
    use rannc_profile::ProfilerOptions;

    #[test]
    fn simulate_plan_end_to_end() {
        let g = mlp_graph(&MlpConfig::deep(64, 64, 8, 10));
        let cluster = ClusterSpec::v100_cluster(1);
        let plan = Rannc::new(PartitionConfig::new(32).with_k(8))
            .partition(&g, &cluster)
            .unwrap();
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let res = simulate_plan(&plan, &profiler, &cluster);
        assert!(res.iteration_time > 0.0);
        assert!(res.throughput > 0.0);
        // simulated time is at least the analytic bottleneck estimate's
        // core term and within a sane factor of it
        assert!(res.iteration_time < plan.est_iteration_time * 10.0 + 1.0);
    }
}
