//! # rannc-pipeline
//!
//! Discrete-event simulation of the training schedules the paper
//! evaluates, standing in for wall-clock measurements on the authors'
//! 32-V100 cluster:
//!
//! * **synchronous pipeline** ([`sync`]) — GPipe-style fill–drain and
//!   1F1B variants, micro-batch by micro-batch, with inter-stage
//!   transfers, per-stage replica groups, gradient all-reduce and the
//!   optimizer step (used for RaNNC and the GPipe baselines);
//! * **asynchronous 2BW pipeline** ([`async2bw`]) — PipeDream-2BW's
//!   flush-free steady state (higher utilization, parameter staleness);
//! * **pure data parallelism** ([`dataparallel`]) — per-device full
//!   replicas with gradient accumulation and ring all-reduce.
//!
//! The entry point for RaNNC plans is [`simulate_plan`], which converts a
//! [`rannc_core::PartitionPlan`] into a [`PipelineSpec`] and runs the
//! synchronous simulator.

pub mod async2bw;
pub mod churn;
pub mod dataparallel;
pub mod fault;
pub mod spec;
pub mod sync;
pub mod trace;
pub mod viz;

pub use churn::{
    simulate_churn, ChurnAction, ChurnDecision, ChurnPolicy, ChurnReport, ChurnSimConfig,
};
pub use fault::{simulate_faulted, FaultSimConfig, FaultSimReport, RecoveryEvent, RecoveryPolicy};
pub use spec::{PipelineSpec, SimResult, SpecError, StageSpec};
pub use sync::{
    comm_program, deep_verify_plan, schedule_model, simulate_sync, sync_work_orders, SyncSchedule,
    TimelineEvent, WorkKind,
};
pub use trace::{publish_sim_metrics, record_timeline};

use rannc_core::PartitionPlan;
use rannc_cost::CostModel;
use rannc_graph::traverse;
use rannc_hw::ClusterSpec;

/// Why a partition plan could not be turned into a simulator spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanSpecError {
    /// Stages `stage` and `stage + 1` are adjacent in the task graph but
    /// no activation traffic was measured between them — the plan's stage
    /// sets are corrupted or out of pipeline order.
    InconsistentAdjacency {
        /// Index of the earlier stage of the offending pair.
        stage: usize,
    },
    /// The derived spec is structurally unusable (empty stages, zero
    /// replicas, …).
    BadSpec(SpecError),
    /// The plan cannot be mapped onto the cluster's device ranks.
    BadAssignment(rannc_core::PlanError),
}

impl std::fmt::Display for PlanSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanSpecError::InconsistentAdjacency { stage } => write!(
                f,
                "stages {stage} and {} are graph-adjacent but exchange no \
                 activations: stage sets corrupted or reordered",
                stage + 1
            ),
            PlanSpecError::BadSpec(e) => write!(f, "plan yields invalid spec: {e}"),
            PlanSpecError::BadAssignment(e) => write!(f, "plan not mappable to devices: {e}"),
        }
    }
}

impl std::error::Error for PlanSpecError {}

/// Build a [`PipelineSpec`] for a RaNNC partition plan and simulate one
/// training iteration under the synchronous fill–drain schedule.
///
/// Inter-stage communication volumes are measured on the task graph (cut
/// bytes between consecutive stage sets, scaled by the per-replica
/// micro-batch and activation precision).
pub fn simulate_plan(
    plan: &PartitionPlan,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
) -> Result<SimResult, PlanSpecError> {
    let spec = spec_from_plan(plan, cost, cluster)?;
    Ok(simulate_sync(&spec, SyncSchedule::FillDrain, false).result)
}

/// Convert a partition plan into the simulator's input description.
///
/// Stage times are **re-priced** with the supplied cost model rather than
/// copied from the plan: the plan's structure (stage sets, replica
/// counts, micro-batches) encodes the partitioning *decisions*, while the
/// cost model is the source of truth for *costs*. This separation lets a
/// plan produced under profiling noise be evaluated by a clean oracle.
/// The model's [`CostFactors`](rannc_cost::CostFactors) are embedded into
/// the spec so downstream pricing (`comm_time`, `allreduce_time`,
/// `optimizer_time`) stays consistent with the model that built it.
pub fn spec_from_plan(
    plan: &PartitionPlan,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
) -> Result<PipelineSpec, PlanSpecError> {
    let g = cost.graph();
    let ckpt = plan.stages.len() > 1;
    let mut stages = Vec::with_capacity(plan.stages.len());
    for (i, st) in plan.stages.iter().enumerate() {
        let tp = st.tensor_parallel.max(1);
        // tp == 1 takes the historical pricing path exactly; split stages
        // are priced through the Megatron-split oracle, which folds the
        // per-pass activation all-reduce into fwd/bwd
        let prof = if tp > 1 {
            cost.stage_cost_tp(
                &st.set,
                st.micro_batch,
                plan.microbatches,
                ckpt,
                tp,
                cluster,
            )
        } else {
            cost.stage_cost(&st.set, st.micro_batch, plan.microbatches, ckpt)
        };
        let comm_to_next_bytes = if i + 1 < plan.stages.len() {
            cost.comm_bytes(&st.set, &plan.stages[i + 1].set, st.micro_batch)
        } else {
            0
        };
        // the plan's stage sets must actually be adjacent in order; a
        // decoded-but-corrupted or hand-edited plan fails here rather
        // than silently simulating a pipeline with free communication
        if i + 1 < plan.stages.len()
            && comm_to_next_bytes == 0
            && traverse::adjacent(g, &st.set, &plan.stages[i + 1].set)
        {
            return Err(PlanSpecError::InconsistentAdjacency { stage: i });
        }
        stages.push(StageSpec {
            fwd_time: prof.fwd_time,
            bwd_time: prof.bwd_time,
            comm_to_next_bytes,
            grad_bytes: prof.param_elems * 4 / tp,
            replicas: st.replicas,
            tensor_parallel: tp,
        });
    }
    let spec = PipelineSpec {
        stages,
        microbatches: plan.microbatches,
        replica_factor: plan.replica_factor,
        batch_size: plan.batch_size,
        link: cluster.planning_link(),
        cluster: cluster.clone(),
        cost: cost.factors(),
    };
    spec.validate().map_err(PlanSpecError::BadSpec)?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_core::{PartitionConfig, Rannc};
    use rannc_hw::DeviceSpec;
    use rannc_models::{mlp_graph, MlpConfig};
    use rannc_profile::{Profiler, ProfilerOptions};

    #[test]
    fn simulate_plan_end_to_end() {
        let g = mlp_graph(&MlpConfig::deep(64, 64, 8, 10));
        let cluster = ClusterSpec::v100_cluster(1);
        let plan = Rannc::new(PartitionConfig::new(32).with_k(8))
            .partition(&g, &cluster)
            .unwrap();
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let res = simulate_plan(&plan, &profiler, &cluster).unwrap();
        assert!(res.iteration_time > 0.0);
        assert!(res.throughput > 0.0);
        // simulated time is at least the analytic bottleneck estimate's
        // core term and within a sane factor of it
        assert!(res.iteration_time < plan.est_iteration_time * 10.0 + 1.0);
    }

    /// A plan whose stages were forced apart enough to be multi-stage.
    fn multi_stage_plan() -> (
        rannc_graph::TaskGraph,
        ClusterSpec,
        rannc_core::PartitionPlan,
    ) {
        let g = mlp_graph(&MlpConfig::deep(512, 512, 12, 10));
        let mem = (1usize << 30) + 40 * (1 << 20);
        let mut cluster = ClusterSpec::v100_cluster(1);
        cluster.device = cluster.device.with_memory(mem);
        let plan = Rannc::new(PartitionConfig::new(32).with_k(8))
            .partition(&g, &cluster)
            .unwrap();
        assert!(plan.stages.len() >= 2, "need a multi-stage plan");
        (g, cluster, plan)
    }

    #[test]
    fn reordered_plan_is_rejected() {
        let (g, cluster, mut plan) = multi_stage_plan();
        plan.stages.reverse();
        let profiler = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        match spec_from_plan(&plan, &profiler, &cluster) {
            Err(PlanSpecError::InconsistentAdjacency { .. }) => {}
            other => panic!("expected InconsistentAdjacency, got {other:?}"),
        }
    }

    #[test]
    fn zero_replica_plan_is_rejected() {
        let (g, cluster, mut plan) = multi_stage_plan();
        plan.stages[0].replicas = 0;
        let profiler = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        assert_eq!(
            spec_from_plan(&plan, &profiler, &cluster).unwrap_err(),
            PlanSpecError::BadSpec(SpecError::ZeroReplicas { stage: 0 })
        );
    }

    #[test]
    fn empty_plan_is_rejected() {
        let (g, cluster, mut plan) = multi_stage_plan();
        plan.stages.clear();
        let profiler = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        assert_eq!(
            spec_from_plan(&plan, &profiler, &cluster).unwrap_err(),
            PlanSpecError::BadSpec(SpecError::NoStages)
        );
    }
}
