//! ASCII visualization of pipeline schedules.
//!
//! Renders the simulator's timeline as the kind of stage/time grid the
//! paper's Fig. 1 uses: one row per stage, forward work as the
//! micro-batch digit, backward work as a letter, idle as dots. Useful in
//! examples and for eyeballing bubble structure.

use crate::sync::{TimelineEvent, WorkKind};

/// Render `events` (from [`crate::sync::simulate_sync`] with
/// `want_timeline = true`) as an ASCII Gantt chart of `width` columns.
///
/// Forward slots print the micro-batch index modulo 10; backward slots
/// print letters (`a` = micro-batch 0). Transfers and idle time appear as
/// `·`.
pub fn render_timeline(events: &[TimelineEvent], stages: usize, width: usize) -> String {
    assert!(width >= 10, "width too small to render");
    let end = events.iter().map(|e| e.end).fold(0.0f64, f64::max);
    if stages == 0 || end <= 0.0 {
        return String::new();
    }
    let scale = width as f64 / end;
    let mut rows = vec![vec!['·'; width]; stages];
    for e in events {
        if e.stage >= stages {
            continue; // an event outside the grid must not panic the chart
        }
        let c0 = (e.start * scale).floor() as usize;
        let c1 = (((e.end * scale).ceil() as usize).max(c0 + 1)).min(width);
        let ch = match e.kind {
            WorkKind::Forward => char::from_digit((e.micro % 10) as u32, 10).unwrap(),
            WorkKind::Backward => (b'a' + (e.micro % 26) as u8) as char,
        };
        for cell in rows[e.stage][c0..c1].iter_mut() {
            *cell = ch;
        }
    }
    let mut out = String::with_capacity(stages * (width + 12));
    for (s, row) in rows.iter().enumerate() {
        out.push_str(&format!("stage {s:>2} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "          0{:>width$}\n",
        format!("{:.1} ms", end * 1e3),
        width = width
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PipelineSpec, StageSpec};
    use crate::sync::{simulate_sync, SyncSchedule};
    use rannc_hw::{ClusterSpec, LinkSpec};

    fn spec(stages: usize, mb: usize) -> PipelineSpec {
        PipelineSpec {
            stages: (0..stages)
                .map(|_| StageSpec {
                    fwd_time: 0.01,
                    bwd_time: 0.02,
                    comm_to_next_bytes: 0,
                    grad_bytes: 0,
                    replicas: 1,
                    tensor_parallel: 1,
                })
                .collect(),
            microbatches: mb,
            replica_factor: 1,
            batch_size: 32,
            link: LinkSpec::nvlink(),
            cluster: ClusterSpec::v100_cluster(1),
            cost: rannc_cost::CostFactors::identity(),
        }
    }

    #[test]
    fn renders_all_stages() {
        let out = simulate_sync(&spec(3, 4), SyncSchedule::FillDrain, true);
        let txt = render_timeline(&out.timeline.unwrap(), 3, 60);
        assert_eq!(txt.lines().count(), 4); // 3 stages + time axis
        assert!(txt.contains("stage  0"));
        assert!(txt.contains("stage  2"));
        // forward digits and backward letters both appear
        assert!(txt.contains('0'));
        assert!(txt.contains('a'));
    }

    #[test]
    fn fill_drain_shows_the_bubble() {
        // in a 4-stage fill-drain chart, stage 3's row must start idle
        let out = simulate_sync(&spec(4, 4), SyncSchedule::FillDrain, true);
        let txt = render_timeline(&out.timeline.unwrap(), 4, 80);
        let last_row = txt.lines().nth(3).unwrap();
        let cells: Vec<char> = last_row.chars().skip("stage  3 |".len()).collect();
        assert_eq!(cells[0], '·', "last stage should start idle (fill bubble)");
    }

    #[test]
    fn empty_timeline_is_empty_string() {
        assert_eq!(render_timeline(&[], 2, 40), "");
    }

    #[test]
    fn zero_stages_is_empty_string() {
        // no rows to draw: empty output, even with events present
        assert_eq!(render_timeline(&[], 0, 40), "");
        let out = simulate_sync(&spec(2, 2), SyncSchedule::FillDrain, true);
        assert_eq!(render_timeline(&out.timeline.unwrap(), 0, 40), "");
    }

    #[test]
    fn out_of_range_stage_events_are_skipped() {
        let out = simulate_sync(&spec(3, 2), SyncSchedule::FillDrain, true);
        // render only the first two rows; stage-2 events fall outside
        let txt = render_timeline(&out.timeline.unwrap(), 2, 40);
        assert_eq!(txt.lines().count(), 3); // 2 stages + time axis
        assert!(txt.contains("stage  1"));
        assert!(!txt.contains("stage  2"));
    }
}
