//! Simulator input/output types.

use rannc_cost::CostFactors;
use rannc_hw::{ClusterSpec, LinkSpec};
use serde::{Deserialize, Serialize};

/// One pipeline stage as the simulator sees it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageSpec {
    /// Forward time of one micro-batch on one replica, seconds.
    pub fwd_time: f64,
    /// Backward time of one micro-batch (incl. recompute), seconds.
    pub bwd_time: f64,
    /// Activation bytes sent to the next stage per micro-batch (already
    /// scaled by micro-batch size and precision). 0 for the last stage.
    pub comm_to_next_bytes: usize,
    /// Gradient bytes the stage all-reduces across its replica group
    /// after the last micro-batch.
    pub grad_bytes: usize,
    /// Data-parallel replicas of this stage within one pipeline.
    pub replicas: usize,
    /// Tensor-parallel degree of the stage: each replica is sharded
    /// across this many devices (1 = unsplit). `grad_bytes` is already
    /// the per-shard volume; the intra-stage activation all-reduce is
    /// folded into `fwd_time`/`bwd_time` by the cost model.
    pub tensor_parallel: usize,
}

/// A full pipeline configuration to simulate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Stages in order.
    pub stages: Vec<StageSpec>,
    /// Micro-batch count per iteration.
    pub microbatches: usize,
    /// Whole-pipeline replicas (hybrid data parallelism).
    pub replica_factor: usize,
    /// Global mini-batch size (for throughput reporting).
    pub batch_size: usize,
    /// Link carrying stage-to-stage activations.
    pub link: LinkSpec,
    /// The cluster (for all-reduce cost modelling).
    pub cluster: ClusterSpec,
    /// Cost-model correction factors applied to the priced quantities.
    /// Identity by default — a spec priced without a calibrated model
    /// reproduces the analytical formulas bit-for-bit.
    #[serde(default)]
    pub cost: CostFactors,
}

/// Why a [`PipelineSpec`] is not simulatable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec has no stages.
    NoStages,
    /// The spec schedules zero micro-batches.
    NoMicrobatches,
    /// A stage has zero data-parallel replicas.
    ZeroReplicas {
        /// Offending stage index.
        stage: usize,
    },
    /// A stage has a zero tensor-parallel degree.
    ZeroTensorParallel {
        /// Offending stage index.
        stage: usize,
    },
    /// The spec has zero whole-pipeline replicas.
    ZeroReplicaFactor,
    /// The spec reports a zero global batch size.
    ZeroBatch,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoStages => write!(f, "pipeline spec has no stages"),
            SpecError::NoMicrobatches => write!(f, "pipeline spec has zero micro-batches"),
            SpecError::ZeroReplicas { stage } => {
                write!(f, "stage {stage} has zero replicas")
            }
            SpecError::ZeroTensorParallel { stage } => {
                write!(f, "stage {stage} has a zero tensor-parallel degree")
            }
            SpecError::ZeroReplicaFactor => write!(f, "zero pipeline replicas"),
            SpecError::ZeroBatch => write!(f, "zero batch size"),
        }
    }
}

impl std::error::Error for SpecError {}

impl PipelineSpec {
    /// Reject structurally impossible specs before simulation: empty
    /// stage lists, zero micro-batches, zero-replica stages.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.stages.is_empty() {
            return Err(SpecError::NoStages);
        }
        if self.microbatches == 0 {
            return Err(SpecError::NoMicrobatches);
        }
        if self.replica_factor == 0 {
            return Err(SpecError::ZeroReplicaFactor);
        }
        if self.batch_size == 0 {
            return Err(SpecError::ZeroBatch);
        }
        if let Some(stage) = self.stages.iter().position(|s| s.replicas == 0) {
            return Err(SpecError::ZeroReplicas { stage });
        }
        if let Some(stage) = self.stages.iter().position(|s| s.tensor_parallel == 0) {
            return Err(SpecError::ZeroTensorParallel { stage });
        }
        Ok(())
    }

    /// Transfer time of stage `i`'s activations to stage `i+1`.
    pub fn comm_time(&self, i: usize) -> f64 {
        let bytes = self.stages[i].comm_to_next_bytes;
        if bytes == 0 {
            0.0
        } else {
            self.link.transfer_time(bytes) * self.cost.transfer
        }
    }

    /// Per-iteration gradient all-reduce time: the slowest stage group.
    ///
    /// Stage `i` synchronizes gradients across `replicas × replica_factor`
    /// devices. The group crosses node boundaries (InfiniBand) when whole
    /// pipeline replicas span nodes (`replica_factor > 1`) or when one
    /// pipeline's stages and replicas cannot fit inside a single node —
    /// the placement any of the compared frameworks would face on the
    /// paper's 8-GPU nodes.
    pub fn allreduce_time(&self) -> f64 {
        let pipeline_devices: usize = self
            .stages
            .iter()
            .map(|s| s.replicas * s.tensor_parallel.max(1))
            .sum();
        let spans_nodes = self.replica_factor > 1 || pipeline_devices > self.cluster.node.devices;
        let factor = if spans_nodes {
            self.cost.allreduce_inter
        } else {
            self.cost.allreduce_intra
        };
        let mut worst: f64 = 0.0;
        for st in &self.stages {
            let group = st.replicas * self.replica_factor;
            if group > 1 {
                let t = self
                    .cluster
                    .replica_allreduce_time(st.grad_bytes, group, spans_nodes);
                worst = worst.max(t * factor);
            }
        }
        worst
    }

    /// Optimizer-step time: Adam reads/writes ~4 words per parameter, so
    /// the update is memory-bandwidth bound on the largest stage.
    pub fn optimizer_time(&self) -> f64 {
        let worst = self.stages.iter().map(|s| s.grad_bytes).max().unwrap_or(0);
        self.cluster.device.optimizer_step_time(worst) * self.cost.optimizer
    }
}

/// What a simulation run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Wall time of one training iteration, seconds.
    pub iteration_time: f64,
    /// Samples per second (`batch_size / iteration_time`).
    pub throughput: f64,
    /// Busy time of each stage within the iteration, seconds.
    pub stage_busy: Vec<f64>,
    /// Mean stage utilization: busy / iteration.
    pub utilization: f64,
}

impl SimResult {
    /// Compose the result from raw pieces.
    pub fn new(iteration_time: f64, batch_size: usize, stage_busy: Vec<f64>) -> Self {
        let utilization = if iteration_time > 0.0 && !stage_busy.is_empty() {
            stage_busy.iter().sum::<f64>() / (iteration_time * stage_busy.len() as f64)
        } else {
            0.0
        };
        SimResult {
            iteration_time,
            throughput: batch_size as f64 / iteration_time,
            stage_busy,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_hw::ClusterSpec;

    pub(crate) fn toy_spec(stages: usize, mb: usize) -> PipelineSpec {
        PipelineSpec {
            stages: (0..stages)
                .map(|_| StageSpec {
                    fwd_time: 0.010,
                    bwd_time: 0.020,
                    comm_to_next_bytes: 1 << 20,
                    grad_bytes: 4 << 20,
                    replicas: 1,
                    tensor_parallel: 1,
                })
                .collect(),
            microbatches: mb,
            replica_factor: 1,
            batch_size: 32,
            link: rannc_hw::LinkSpec::nvlink(),
            cluster: ClusterSpec::v100_cluster(1),
            cost: CostFactors::identity(),
        }
    }

    #[test]
    fn comm_time_zero_for_no_bytes() {
        let mut s = toy_spec(2, 4);
        s.stages[1].comm_to_next_bytes = 0;
        assert!(s.comm_time(0) > 0.0);
        assert_eq!(s.comm_time(1), 0.0);
    }

    #[test]
    fn allreduce_zero_without_replication() {
        let s = toy_spec(2, 4);
        assert_eq!(s.allreduce_time(), 0.0);
        let mut r = toy_spec(2, 4);
        r.replica_factor = 2;
        assert!(r.allreduce_time() > 0.0);
    }

    #[test]
    fn result_utilization_bounds() {
        let r = SimResult::new(1.0, 32, vec![0.5, 0.9]);
        assert!((r.utilization - 0.7).abs() < 1e-12);
        assert_eq!(r.throughput, 32.0);
    }

    #[test]
    fn validate_accepts_sane_spec() {
        assert_eq!(toy_spec(2, 4).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_empty_stages() {
        let mut s = toy_spec(2, 4);
        s.stages.clear();
        assert_eq!(s.validate(), Err(SpecError::NoStages));
    }

    #[test]
    fn validate_rejects_zero_microbatches() {
        let s = toy_spec(2, 0);
        assert_eq!(s.validate(), Err(SpecError::NoMicrobatches));
    }

    #[test]
    fn validate_rejects_zero_replica_stage() {
        let mut s = toy_spec(3, 4);
        s.stages[1].replicas = 0;
        assert_eq!(s.validate(), Err(SpecError::ZeroReplicas { stage: 1 }));
    }

    #[test]
    fn validate_rejects_zero_replica_factor_and_batch() {
        let mut s = toy_spec(1, 1);
        s.replica_factor = 0;
        assert_eq!(s.validate(), Err(SpecError::ZeroReplicaFactor));
        let mut s = toy_spec(1, 1);
        s.batch_size = 0;
        assert_eq!(s.validate(), Err(SpecError::ZeroBatch));
    }

    #[test]
    fn optimizer_time_scales_with_params() {
        let small = toy_spec(2, 4).optimizer_time();
        let mut big = toy_spec(2, 4);
        big.stages[0].grad_bytes *= 100;
        assert!(big.optimizer_time() > small * 50.0);
    }
}
