//! Churn campaigns: long training runs under continuous cluster change.
//!
//! Where [`crate::fault`] scripts *failures* (devices die, the run
//! recovers), this module scripts the *life of the cluster*: a seeded
//! [`ClusterEventTrace`] of `leave` / `recover` / `degrade` / `join`
//! events plays against a running plan, and a **policy** decides, event
//! by event, whether to pay for a replan now, ride the change out, or
//! permanently degrade in place. The campaign scores each policy on
//! goodput (useful samples per wall second) and MTTR, and emits a
//! deterministic decision log — the same trace and policy always
//! produce the same decisions, so campaigns reproduce from the seed.
//!
//! Pricing is placement-aware: when the evolved cluster is
//! heterogeneous, every stage's simulated time is stretched by the
//! worst [`time_scale`](rannc_hw::DeviceSpec::time_scale_vs) of the
//! devices its contiguous slot group occupies, the same convention the
//! placed DP and the plan verifier use.

use crate::sync::{simulate_sync, SyncSchedule};
use crate::{spec_from_plan, PlanSpecError};
use rannc_core::{PartitionPlan, Rannc};
use rannc_cost::CostModel;
use rannc_faults::{ClusterEvent, ClusterEventTrace};
use rannc_hw::ClusterSpec;

/// How the campaign reacts to each cluster event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnPolicy {
    /// Replan on every capacity-changing event (losses *and* gains).
    ReplanAlways,
    /// Never replan; absorb changes expecting them to be transient —
    /// sheds a pipeline replica when a loss forces it, and restores the
    /// shed replica as soon as recoveries make room again.
    RideItOut,
    /// Never replan; accept every loss permanently — shed replicas stay
    /// shed, recovered devices only rejoin the spare pool.
    DegradeInPlace,
    /// Per event, price both options over [`ChurnSimConfig::horizon`]
    /// iterations — ride cost vs. replan downtime + better steady state
    /// — and take the cheaper one.
    Adaptive,
}

/// What the policy did about one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// A new plan was adopted (replan ladder succeeded).
    Replan,
    /// The current plan was kept unchanged.
    Ride,
    /// The current plan was kept but one pipeline replica was shed.
    Shed,
    /// A previously shed replica was restored.
    Restore,
    /// The campaign could not continue.
    Halt,
}

impl ChurnAction {
    /// Lowercase tag for logs and traces.
    pub fn tag(&self) -> &'static str {
        match self {
            ChurnAction::Replan => "replan",
            ChurnAction::Ride => "ride",
            ChurnAction::Shed => "shed",
            ChurnAction::Restore => "restore",
            ChurnAction::Halt => "halt",
        }
    }
}

/// Knobs of a churn campaign.
#[derive(Debug, Clone, Copy)]
pub struct ChurnSimConfig {
    /// Iterations the campaign must complete.
    pub iterations: usize,
    /// Wall time from a device leaving to the loss being detected, s.
    pub detect_timeout: f64,
    /// Wall time to restore training state onto the survivors, s.
    pub restore_cost: f64,
    /// Fixed wall time one replan (search + redeploy control plane)
    /// costs, on top of the priced state migration.
    pub replan_cost: f64,
    /// Extra replan-ladder rungs after the warm start (see
    /// [`Rannc::replan_with_backoff`]).
    pub replan_retries: usize,
    /// The policy under test.
    pub policy: ChurnPolicy,
    /// Iterations [`ChurnPolicy::Adaptive`] amortizes a replan over.
    pub horizon: usize,
}

impl Default for ChurnSimConfig {
    fn default() -> Self {
        ChurnSimConfig {
            iterations: 10_000,
            detect_timeout: 5.0,
            restore_cost: 2.0,
            replan_cost: 15.0,
            replan_retries: 2,
            policy: ChurnPolicy::Adaptive,
            horizon: 2_000,
        }
    }
}

/// One entry of the campaign's decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnDecision {
    /// Iteration the event struck.
    pub at_iter: usize,
    /// Event kind tag (`leave` / `recover` / `degrade` / `join`).
    pub event: &'static str,
    /// What the policy did.
    pub action: ChurnAction,
    /// Wall-clock seconds of training stopped by the decision.
    pub downtime: f64,
    /// Per-iteration wall time after the decision, s.
    pub iteration_time: f64,
    /// Replan-ladder attempts consumed (0 when no replan ran).
    pub replan_attempts: usize,
    /// State bytes migrated to adopt a new plan (0 when no replan).
    pub moved_bytes: usize,
}

/// What a churn campaign reports.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Total wall time, s.
    pub wall_time: f64,
    /// Iterations completed (== the target unless halted).
    pub completed_iterations: usize,
    /// Useful samples per wall second.
    pub goodput: f64,
    /// The full decision log, one entry per consumed event.
    pub decisions: Vec<ChurnDecision>,
    /// Plans adopted during the campaign (each passed verification).
    pub replans: usize,
    /// True when the campaign stopped early.
    pub halted: bool,
}

impl ChurnReport {
    /// Mean time to recovery over decisions that stopped training.
    pub fn mttr(&self) -> f64 {
        let stops: Vec<f64> = self
            .decisions
            .iter()
            .filter(|d| d.downtime > 0.0 && d.downtime.is_finite())
            .map(|d| d.downtime)
            .collect();
        if stops.is_empty() {
            0.0
        } else {
            stops.iter().sum::<f64>() / stops.len() as f64
        }
    }
}

/// Price one iteration of `plan` on (a planning view of) `cluster`,
/// stretching each stage by the worst time scale of its device group.
fn priced_iteration_time(
    plan: &PartitionPlan,
    cost: &dyn CostModel,
    view: &ClusterSpec,
) -> Result<f64, PlanSpecError> {
    let mut spec = spec_from_plan(plan, cost, view)?;
    if view.is_heterogeneous() {
        let precision = cost.options().precision;
        let per_replica = plan.devices_per_replica();
        let mut off = 0usize;
        for (i, st) in plan.stages.iter().enumerate() {
            let width = st.replicas * st.tensor_parallel.max(1);
            let mut worst = 1.0f64;
            for rep in 0..plan.replica_factor {
                for slot in off..off + width {
                    let g = rep * per_replica + slot;
                    if g < view.total_devices() {
                        worst = worst.max(
                            view.device_at_global(g)
                                .time_scale_vs(&view.device, precision),
                        );
                    }
                }
            }
            if worst > 1.0 {
                spec.stages[i].fwd_time *= worst;
                spec.stages[i].bwd_time *= worst;
            }
            off += width;
        }
    }
    Ok(simulate_sync(&spec, SyncSchedule::FillDrain, false)
        .result
        .iteration_time)
}

/// The ride option: keep `plan` on the evolved cluster, shedding
/// pipeline replicas while it does not fit. Returns the (possibly shed)
/// plan, its priced iteration time, and what happened — or `None` when
/// even one replica no longer fits.
///
/// `planned_replicas` is the replica count the plan's micro-batches were
/// sized for: running the same global batch on fewer replicas stretches
/// the iteration by `planned / current` (the physics the fault
/// simulator's `R / (R − 1)` shed factor encodes).
fn ride_option(
    plan: &PartitionPlan,
    planned_replicas: usize,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
) -> Option<(PartitionPlan, f64, ChurnAction)> {
    let mut plan = plan.clone();
    let mut action = ChurnAction::Ride;
    while cluster.healthy_devices() < plan.total_devices() {
        if plan.replica_factor <= 1 {
            return None;
        }
        plan.replica_factor -= 1;
        action = ChurnAction::Shed;
    }
    let view = cluster.planning_view();
    let mut it = priced_iteration_time(&plan, cost, &view).ok()?;
    if plan.replica_factor < planned_replicas {
        it *= planned_replicas as f64 / plan.replica_factor as f64;
    }
    Some((plan, it, action))
}

/// The replan option: run the backoff ladder on the evolved cluster.
/// Returns the verified plan, its priced iteration time, the downtime of
/// adopting it, and the ladder/migration accounting.
#[allow(clippy::type_complexity)]
fn replan_option(
    rannc: &Rannc,
    plan: &PartitionPlan,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    cfg: &ChurnSimConfig,
) -> Option<(PartitionPlan, f64, f64, usize, usize)> {
    let out = rannc
        .replan_with_backoff(cost.graph(), plan, cluster, cfg.replan_retries)
        .ok()?;
    let view = cluster.planning_view();
    let it = priced_iteration_time(&out.plan, cost, &view).ok()?;
    let downtime = cfg.replan_cost + out.migration.downtime_steps as f64 * it;
    Some((
        out.plan,
        it,
        downtime,
        out.attempts,
        out.migration.total_bytes(),
    ))
}

/// Run a churn campaign: `cfg.iterations` iterations of `plan` on
/// `cluster` while the event trace plays out under `cfg.policy`.
///
/// Deterministic: the same `(plan, cluster, trace, cfg)` always yields
/// the same report and decision log. Every adopted plan went through
/// [`Rannc::replan_with_backoff`] and therefore through the verifier at
/// the partitioner's configured [`VerifyMode`](rannc_core::VerifyMode).
pub fn simulate_churn(
    rannc: &Rannc,
    plan: &PartitionPlan,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    trace: &ClusterEventTrace,
    cfg: &ChurnSimConfig,
) -> Result<ChurnReport, PlanSpecError> {
    let _root = rannc_obs::trace::span("churn.campaign", "churn")
        .arg_i("events", trace.events().len() as i64)
        .arg_i("iterations", cfg.iterations as i64);
    let mut cluster = cluster.clone();
    let mut plan = plan.clone();
    // the replica count the plan's micro-batches were sized for: ride
    // policies stretch shed configurations against it, and RideItOut
    // restores toward it
    let mut planned_replicas = plan.replica_factor;
    let mut iter_time = priced_iteration_time(&plan, cost, &cluster.planning_view())?;

    let mut wall = 0.0f64;
    let mut done = 0usize;
    let mut decisions = Vec::new();
    let mut replans = 0usize;
    let mut halted = false;

    for te in trace.events() {
        let at = te.at_iter.min(cfg.iterations);
        wall += (at - done) as f64 * iter_time;
        done = at;
        if done >= cfg.iterations {
            break;
        }
        let kind = te.event.kind();
        let _span = rannc_obs::trace::span("churn.decision", "churn")
            .arg_i("at_iter", at as i64)
            .arg_i("event", decisions.len() as i64);
        rannc_obs::metrics::counter("churn.events").inc();

        cluster = match te.event.apply(&cluster) {
            Ok(c) => c,
            Err(_) => {
                // e.g. the last healthy device left: nothing to run on
                decisions.push(ChurnDecision {
                    at_iter: at,
                    event: kind,
                    action: ChurnAction::Halt,
                    downtime: cfg.detect_timeout,
                    iteration_time: f64::INFINITY,
                    replan_attempts: 0,
                    moved_bytes: 0,
                });
                wall += cfg.detect_timeout;
                halted = true;
                break;
            }
        };

        // a loss stops training until detected and restored; capacity
        // gains and throttles are observed without stopping the run
        let is_loss = matches!(te.event, ClusterEvent::Leave { .. });
        let base_downtime = if is_loss {
            cfg.detect_timeout + cfg.restore_cost
        } else {
            0.0
        };

        let decision = match cfg.policy {
            ChurnPolicy::ReplanAlways => {
                match replan_option(rannc, &plan, cost, &cluster, cfg) {
                    Some((new_plan, it, replan_dt, attempts, moved)) => {
                        plan = new_plan;
                        planned_replicas = plan.replica_factor;
                        iter_time = it;
                        replans += 1;
                        ChurnDecision {
                            at_iter: at,
                            event: kind,
                            action: ChurnAction::Replan,
                            downtime: base_downtime + replan_dt,
                            iteration_time: it,
                            replan_attempts: attempts,
                            moved_bytes: moved,
                        }
                    }
                    // the ladder failed: degrade in place rather than die
                    None => match ride_option(&plan, planned_replicas, cost, &cluster) {
                        Some((kept, it, action)) => {
                            plan = kept;
                            iter_time = it;
                            ChurnDecision {
                                at_iter: at,
                                event: kind,
                                action,
                                downtime: base_downtime,
                                iteration_time: it,
                                replan_attempts: cfg.replan_retries + 1,
                                moved_bytes: 0,
                            }
                        }
                        None => ChurnDecision {
                            at_iter: at,
                            event: kind,
                            action: ChurnAction::Halt,
                            downtime: base_downtime,
                            iteration_time: f64::INFINITY,
                            replan_attempts: cfg.replan_retries + 1,
                            moved_bytes: 0,
                        },
                    },
                }
            }
            ChurnPolicy::RideItOut | ChurnPolicy::DegradeInPlace => {
                let mut candidate = plan.clone();
                // RideItOut grows back toward the planned replica count
                // as soon as recovered capacity allows; DegradeInPlace
                // keeps sheds permanent
                if cfg.policy == ChurnPolicy::RideItOut {
                    candidate.replica_factor = planned_replicas;
                }
                match ride_option(&candidate, planned_replicas, cost, &cluster) {
                    Some((kept, it, mut action)) => {
                        if cfg.policy == ChurnPolicy::RideItOut
                            && kept.replica_factor > plan.replica_factor
                        {
                            action = ChurnAction::Restore;
                        }
                        plan = kept;
                        iter_time = it;
                        ChurnDecision {
                            at_iter: at,
                            event: kind,
                            action,
                            downtime: base_downtime,
                            iteration_time: it,
                            replan_attempts: 0,
                            moved_bytes: 0,
                        }
                    }
                    None => ChurnDecision {
                        at_iter: at,
                        event: kind,
                        action: ChurnAction::Halt,
                        downtime: base_downtime,
                        iteration_time: f64::INFINITY,
                        replan_attempts: 0,
                        moved_bytes: 0,
                    },
                }
            }
            ChurnPolicy::Adaptive => {
                let ride = ride_option(&plan, planned_replicas, cost, &cluster);
                let horizon = cfg.horizon.max(1) as f64;
                // only pay for a replan evaluation when riding is
                // impossible or the event plausibly changed the optimum
                let replan = replan_option(rannc, &plan, cost, &cluster, cfg);
                let ride_total = ride
                    .as_ref()
                    .map(|(_, it, _)| horizon * it)
                    .unwrap_or(f64::INFINITY);
                let replan_total = replan
                    .as_ref()
                    .map(|(_, it, dt, _, _)| dt + horizon * it)
                    .unwrap_or(f64::INFINITY);
                if replan_total < ride_total {
                    let (new_plan, it, replan_dt, attempts, moved) = replan.unwrap();
                    plan = new_plan;
                    planned_replicas = plan.replica_factor;
                    iter_time = it;
                    replans += 1;
                    ChurnDecision {
                        at_iter: at,
                        event: kind,
                        action: ChurnAction::Replan,
                        downtime: base_downtime + replan_dt,
                        iteration_time: it,
                        replan_attempts: attempts,
                        moved_bytes: moved,
                    }
                } else if let Some((kept, it, action)) = ride {
                    plan = kept;
                    iter_time = it;
                    ChurnDecision {
                        at_iter: at,
                        event: kind,
                        action,
                        downtime: base_downtime,
                        iteration_time: it,
                        replan_attempts: 0,
                        moved_bytes: 0,
                    }
                } else {
                    ChurnDecision {
                        at_iter: at,
                        event: kind,
                        action: ChurnAction::Halt,
                        downtime: base_downtime,
                        iteration_time: f64::INFINITY,
                        replan_attempts: 0,
                        moved_bytes: 0,
                    }
                }
            }
        };

        wall += decision.downtime;
        if decision.action == ChurnAction::Replan {
            rannc_obs::metrics::counter("churn.replans").inc();
        }
        let is_halt = decision.action == ChurnAction::Halt;
        decisions.push(decision);
        if is_halt {
            halted = true;
            break;
        }
    }

    if !halted {
        wall += (cfg.iterations - done) as f64 * iter_time;
        done = cfg.iterations;
    }
    let goodput = if wall > 0.0 {
        done as f64 * plan.batch_size as f64 / wall
    } else {
        0.0
    };
    let report = ChurnReport {
        wall_time: wall,
        completed_iterations: done,
        goodput,
        decisions,
        replans,
        halted,
    };
    publish_churn_metrics(&report);
    Ok(report)
}

/// Export a churn report to the metrics registry.
fn publish_churn_metrics(report: &ChurnReport) {
    use rannc_obs::metrics;
    metrics::counter("churn.decisions").add(report.decisions.len() as u64);
    let downtime = metrics::histogram("churn.downtime_seconds");
    for d in &report.decisions {
        if d.downtime > 0.0 && d.downtime.is_finite() {
            downtime.observe(d.downtime);
        }
    }
    metrics::gauge("churn.goodput").set(report.goodput);
    metrics::gauge("churn.mttr_seconds").set(report.mttr());
    metrics::gauge("churn.halted").set(if report.halted { 1.0 } else { 0.0 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_core::PartitionConfig;
    use rannc_hw::{DeviceRank, DeviceSpec};
    use rannc_models::{mlp_graph, MlpConfig};
    use rannc_profile::{Profiler, ProfilerOptions};

    fn setup() -> (rannc_graph::TaskGraph, ClusterSpec, Rannc, PartitionPlan) {
        let g = mlp_graph(&MlpConfig::deep(64, 64, 8, 10));
        let cluster = ClusterSpec::v100_cluster(2);
        let rannc = Rannc::new(PartitionConfig::new(32).with_k(8));
        let plan = rannc.partition(&g, &cluster).unwrap();
        (g, cluster, rannc, plan)
    }

    fn run(policy: ChurnPolicy, trace: &ClusterEventTrace) -> ChurnReport {
        let (g, cluster, rannc, plan) = setup();
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let cfg = ChurnSimConfig {
            iterations: 100_000,
            policy,
            horizon: 20_000,
            ..ChurnSimConfig::default()
        };
        simulate_churn(&rannc, &plan, &profiler, &cluster, trace, &cfg).unwrap()
    }

    fn rank(node: usize, local: usize) -> DeviceRank {
        DeviceRank { node, local }
    }

    #[test]
    fn quiet_trace_is_a_clean_campaign() {
        let r = run(ChurnPolicy::Adaptive, &ClusterEventTrace::new(1));
        assert!(r.decisions.is_empty());
        assert!(!r.halted);
        assert_eq!(r.completed_iterations, 100_000);
        assert_eq!(r.mttr(), 0.0);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cluster = ClusterSpec::v100_cluster(2);
        let trace = ClusterEventTrace::generate(11, 12, &cluster, 5000);
        let a = run(ChurnPolicy::Adaptive, &trace);
        let b = run(ChurnPolicy::Adaptive, &trace);
        assert_eq!(a.wall_time.to_bits(), b.wall_time.to_bits());
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.replans, b.replans);
    }

    #[test]
    fn replan_beats_degrade_in_place_under_sustained_loss() {
        // one device lost early in a long campaign: degrade-in-place
        // sheds a whole pipeline replica (idling the rest of its node
        // group), replanning re-spreads the model over the 15 survivors
        let trace =
            ClusterEventTrace::new(0).with_event(1000, ClusterEvent::Leave { rank: rank(1, 0) });
        let degrade = run(ChurnPolicy::DegradeInPlace, &trace);
        let replan = run(ChurnPolicy::ReplanAlways, &trace);
        assert!(!degrade.halted && !replan.halted);
        assert!(
            replan.goodput > degrade.goodput,
            "replan {} must beat degrade-in-place {}",
            replan.goodput,
            degrade.goodput
        );
        assert!(replan.replans >= 1);
        assert!(replan.decisions.iter().any(|d| d.moved_bytes > 0));
    }

    #[test]
    fn ride_it_out_restores_shed_replicas_on_recovery() {
        let mut trace = ClusterEventTrace::new(0);
        // lose a whole node, then get it back
        for local in 0..8 {
            trace.push(
                1000,
                ClusterEvent::Leave {
                    rank: rank(1, local),
                },
            );
        }
        for local in 0..8 {
            trace.push(
                5000,
                ClusterEvent::Recover {
                    rank: rank(1, local),
                },
            );
        }
        let r = run(ChurnPolicy::RideItOut, &trace);
        assert!(!r.halted);
        assert!(r.decisions.iter().any(|d| d.action == ChurnAction::Shed));
        assert!(
            r.decisions.iter().any(|d| d.action == ChurnAction::Restore),
            "recovered capacity must restore the shed replica"
        );
        // back to the original speed once restored
        let last = r.decisions.last().unwrap();
        let first = r.decisions.first().unwrap();
        assert!(last.iteration_time <= first.iteration_time * 1.0001);
    }

    #[test]
    fn degrade_events_slow_ride_campaigns() {
        let trace = ClusterEventTrace::new(0).with_event(
            1000,
            ClusterEvent::Degrade {
                rank: rank(0, 0),
                factor: 0.25,
            },
        );
        let clean = run(ChurnPolicy::DegradeInPlace, &ClusterEventTrace::new(0));
        let throttled = run(ChurnPolicy::DegradeInPlace, &trace);
        assert!(
            throttled.goodput < clean.goodput,
            "a 4x-throttled in-use device must cost goodput: {} vs {}",
            throttled.goodput,
            clean.goodput
        );
    }

    #[test]
    fn generated_campaign_completes_with_decision_log() {
        let cluster = ClusterSpec::v100_cluster(2);
        let trace = ClusterEventTrace::generate(3, 20, &cluster, 4000);
        let r = run(ChurnPolicy::Adaptive, &trace);
        assert!(r.completed_iterations > 0);
        assert!(!r.decisions.is_empty());
        for d in &r.decisions {
            assert!(d.iteration_time > 0.0);
        }
    }
}
