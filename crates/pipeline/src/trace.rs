//! Bridge from simulated pipeline timelines to the observability layer.
//!
//! The simulator's clock is *simulated* seconds, not the wall clock the
//! tracing spans use. [`record_timeline`] maps a [`TimelineEvent`] batch
//! onto Chrome-trace slices by (1) allocating one virtual lane per
//! pipeline stage and (2) offsetting all simulated times by the current
//! tracing clock, so the rendered schedule sits at "now" in the trace and
//! never collides with earlier wall-clock spans. Slices are named `F{m}` /
//! `B{m}` per micro-batch — loading the trace in Perfetto shows the
//! fill–drain or 1F1B structure exactly like the paper's Fig. 1.
//!
//! [`publish_sim_metrics`] exports the aggregate schedule quality
//! (utilization, bubble ratio, iteration time, per-stage utilization) as
//! gauges.

use crate::spec::SimResult;
use crate::sync::{TimelineEvent, WorkKind};
use rannc_obs::trace::{self, ArgVal};
use std::borrow::Cow;

/// Record a simulated timeline as trace slices on per-stage virtual
/// lanes named `"{label} stage {s}"`. Returns the number of slices
/// recorded — 0 while tracing is disabled (nothing is allocated then).
pub fn record_timeline(label: &str, events: &[TimelineEvent], stages: usize) -> usize {
    if !rannc_obs::enabled() || stages == 0 {
        return 0;
    }
    let base_us = rannc_obs::now_us();
    let lanes: Vec<u64> = (0..stages)
        .map(|s| trace::lane(&format!("{label} stage {s}")))
        .collect();
    let mut recorded = 0usize;
    for e in events {
        if e.stage >= stages {
            continue;
        }
        let name = match e.kind {
            WorkKind::Forward => format!("F{}", e.micro),
            WorkKind::Backward => format!("B{}", e.micro),
        };
        trace::record_slice(
            lanes[e.stage],
            Cow::Owned(name),
            "pipeline",
            base_us + e.start * 1e6,
            (e.end - e.start).max(0.0) * 1e6,
            vec![
                ("micro", ArgVal::Int(e.micro as i64)),
                ("stage", ArgVal::Int(e.stage as i64)),
                ("sim_start_s", ArgVal::Float(e.start)),
            ],
        );
        recorded += 1;
    }
    recorded
}

/// Publish schedule-quality gauges from a simulation result:
/// `pipeline.utilization`, `pipeline.bubble_ratio`,
/// `pipeline.iteration_seconds`, `pipeline.throughput`, and per-stage
/// `pipeline.stage_utilization.{s}`.
pub fn publish_sim_metrics(result: &SimResult) {
    rannc_obs::metrics::gauge("pipeline.utilization").set(result.utilization);
    rannc_obs::metrics::gauge("pipeline.bubble_ratio").set(1.0 - result.utilization);
    rannc_obs::metrics::gauge("pipeline.iteration_seconds").set(result.iteration_time);
    rannc_obs::metrics::gauge("pipeline.throughput").set(result.throughput);
    for (s, busy) in result.stage_busy.iter().enumerate() {
        let u = if result.iteration_time > 0.0 {
            busy / result.iteration_time
        } else {
            0.0
        };
        rannc_obs::metrics::gauge(&format!("pipeline.stage_utilization.{s}")).set(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PipelineSpec, StageSpec};
    use crate::sync::{simulate_sync, SyncSchedule};
    use rannc_hw::{ClusterSpec, LinkSpec};

    fn spec(stages: usize, mb: usize) -> PipelineSpec {
        PipelineSpec {
            stages: (0..stages)
                .map(|_| StageSpec {
                    fwd_time: 0.01,
                    bwd_time: 0.02,
                    comm_to_next_bytes: 0,
                    grad_bytes: 0,
                    replicas: 1,
                    tensor_parallel: 1,
                })
                .collect(),
            microbatches: mb,
            replica_factor: 1,
            batch_size: 32,
            link: LinkSpec::nvlink(),
            cluster: ClusterSpec::v100_cluster(1),
            cost: rannc_cost::CostFactors::identity(),
        }
    }

    #[test]
    fn records_one_slice_per_timeline_event_on_stage_lanes() {
        let _g = trace::test_guard();
        rannc_obs::set_enabled(true);
        trace::reset();
        let out = simulate_sync(&spec(3, 4), SyncSchedule::OneFOneB, true);
        let tl = out.timeline.unwrap();
        let n = record_timeline("1f1b", &tl, 3);
        rannc_obs::set_enabled(false);
        assert_eq!(n, tl.len());
        let events = trace::drain_events();
        assert_eq!(events.len(), tl.len());
        let lanes = trace::lane_names();
        assert!(lanes.iter().any(|(_, n)| n == "1f1b stage 0"));
        assert!(lanes.iter().any(|(_, n)| n == "1f1b stage 2"));
        // forward and backward of micro-batch 0 both appear
        assert!(events.iter().any(|e| e.name == "F0"));
        assert!(events.iter().any(|e| e.name == "B0"));
        trace::reset();
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = trace::test_guard();
        rannc_obs::set_enabled(false);
        trace::reset();
        let out = simulate_sync(&spec(2, 2), SyncSchedule::FillDrain, true);
        assert_eq!(record_timeline("off", &out.timeline.unwrap(), 2), 0);
        assert_eq!(trace::event_count(), 0);
    }

    #[test]
    fn sim_metrics_gauges_reflect_the_result() {
        let out = simulate_sync(&spec(4, 8), SyncSchedule::FillDrain, false);
        publish_sim_metrics(&out.result);
        use rannc_obs::metrics::{value, MetricValue};
        let util = match value("pipeline.utilization") {
            Some(MetricValue::Gauge(v)) => v,
            other => panic!("missing utilization gauge: {other:?}"),
        };
        let bubble = match value("pipeline.bubble_ratio") {
            Some(MetricValue::Gauge(v)) => v,
            other => panic!("missing bubble gauge: {other:?}"),
        };
        assert!((util + bubble - 1.0).abs() < 1e-9);
        assert!(matches!(
            value("pipeline.stage_utilization.3"),
            Some(MetricValue::Gauge(_))
        ));
    }
}
