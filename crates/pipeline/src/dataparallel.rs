//! Pure data-parallel training model (the paper's "data parallelism"
//! baseline — PyTorch's official distributed data parallelism).
//!
//! Every device holds a full model replica and processes
//! `BS / total_devices` samples per iteration. Gradient accumulation
//! (§IV-A) splits that share into steps of at most `max_micro` samples to
//! bound activation memory; gradients are ring-all-reduced across all
//! devices once per iteration. No gradient checkpointing (the stock model
//! descriptions the paper uses for this baseline don't enable it), so
//! activations of a whole step stay resident — which is why data
//! parallelism "could train only the smallest model" (§IV-B).

use crate::spec::SimResult;
use rannc_cost::CostModel;
use rannc_graph::{TaskGraph, TaskSet};
use rannc_hw::ClusterSpec;

/// Outcome of the data-parallel feasibility + performance model.
#[derive(Debug, Clone)]
pub enum DataParallelOutcome {
    /// Trains; one iteration takes `result.iteration_time`.
    Feasible(SimResult),
    /// Out of memory even with one-sample accumulation steps.
    OutOfMemory {
        /// Memory needed at micro-batch 1, bytes.
        needed: usize,
        /// Device memory available, bytes.
        available: usize,
    },
}

impl DataParallelOutcome {
    /// The result if feasible.
    pub fn ok(self) -> Option<SimResult> {
        match self {
            DataParallelOutcome::Feasible(r) => Some(r),
            DataParallelOutcome::OutOfMemory { .. } => None,
        }
    }
}

/// Simulate one iteration of pure data parallelism for the whole graph.
///
/// Picks the largest accumulation micro-step (a power of two ≤ the
/// per-device share) that fits device memory.
pub fn simulate_data_parallel(
    g: &TaskGraph,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    batch_size: usize,
) -> DataParallelOutcome {
    let devices = cluster.total_devices();
    let per_device = (batch_size / devices).max(1);
    let whole = TaskSet::from_ids(g.num_tasks(), g.task_ids());

    // largest power-of-two micro-step that fits
    let mut micro = per_device.next_power_of_two();
    if micro > per_device {
        micro /= 2;
    }
    let mut chosen = None;
    while micro >= 1 {
        let prof = cost.stage_cost(&whole, micro, 1, false);
        if prof.mem_bytes <= cluster.device.memory_bytes {
            chosen = Some((micro, prof));
            break;
        }
        if micro == 1 {
            return DataParallelOutcome::OutOfMemory {
                needed: prof.mem_bytes,
                available: cluster.device.memory_bytes,
            };
        }
        micro /= 2;
    }
    let (micro, prof) = chosen.expect("loop guarantees Some or early return");

    let steps = per_device.div_ceil(micro);
    let compute = steps as f64 * (prof.fwd_time + prof.bwd_time);
    let grad_bytes = prof.param_elems * 4;
    let ranks: Vec<usize> = (0..devices).collect();
    let allreduce = cluster.allreduce_time(grad_bytes, &ranks);
    let optimizer = cost.optimizer_time(&cluster.device, grad_bytes);
    let iteration = compute + allreduce + optimizer;
    DataParallelOutcome::Feasible(SimResult::new(iteration, batch_size, vec![compute]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_hw::DeviceSpec;
    use rannc_models::{bert_graph, mlp_graph, BertConfig, MlpConfig};
    use rannc_profile::{Profiler, ProfilerOptions};

    #[test]
    fn small_model_is_feasible() {
        let g = mlp_graph(&MlpConfig::deep(64, 64, 4, 10));
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let cluster = ClusterSpec::v100_cluster(1);
        let out = simulate_data_parallel(&g, &profiler, &cluster, 64);
        let r = out.ok().expect("feasible");
        assert!(r.iteration_time > 0.0);
    }

    #[test]
    fn huge_model_oom() {
        // 2B params -> 32 GB of states alone exceeds a 32 GB device (plus
        // overhead); data parallelism must report OOM.
        let g = bert_graph(&BertConfig::enlarged(256, 4)); // small graph but...
        let profiler = Profiler::new(
            &g,
            DeviceSpec::v100_32gb().with_memory(1 << 28),
            ProfilerOptions::fp32(),
        );
        let cluster = ClusterSpec {
            device: DeviceSpec::v100_32gb().with_memory(1 << 28),
            ..ClusterSpec::v100_cluster(1)
        };
        let out = simulate_data_parallel(&g, &profiler, &cluster, 64);
        assert!(matches!(out, DataParallelOutcome::OutOfMemory { .. }));
    }

    #[test]
    fn more_devices_faster_for_compute_heavy_models() {
        // BERT-style models reuse every parameter ~seq_len times, so the
        // compute term dominates the gradient all-reduce and data
        // parallelism scales. (Parameter-heavy MLPs do NOT — the
        // all-reduce over InfiniBand dominates — which the model captures
        // faithfully.)
        let g = bert_graph(&BertConfig::enlarged(128, 4));
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let c1 = ClusterSpec::v100_cluster(1);
        let c4 = ClusterSpec::v100_cluster(4);
        let t1 = simulate_data_parallel(&g, &profiler, &c1, 256)
            .ok()
            .unwrap()
            .iteration_time;
        let t4 = simulate_data_parallel(&g, &profiler, &c4, 256)
            .ok()
            .unwrap()
            .iteration_time;
        assert!(t4 < t1, "t1={t1} t4={t4}");
    }

    #[test]
    fn allreduce_bound_mlp_does_not_scale_across_nodes() {
        // The inverse property: a parameter-heavy MLP is all-reduce bound
        // over InfiniBand, so 4 nodes are no better than 1.
        let g = mlp_graph(&MlpConfig::deep(2048, 2048, 8, 10));
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let c1 = ClusterSpec::v100_cluster(1);
        let c4 = ClusterSpec::v100_cluster(4);
        let t1 = simulate_data_parallel(&g, &profiler, &c1, 4096)
            .ok()
            .unwrap()
            .iteration_time;
        let t4 = simulate_data_parallel(&g, &profiler, &c4, 4096)
            .ok()
            .unwrap()
            .iteration_time;
        assert!(t4 > t1 * 0.8, "t1={t1} t4={t4}");
    }
}
