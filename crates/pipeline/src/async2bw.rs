//! Asynchronous 2BW pipeline model (PipeDream-2BW, Narayanan et al.).
//!
//! 2BW removes the synchronous flush: stages keep two weight versions
//! (double buffering) and never drain, so in steady state every stage is
//! continuously busy and the iteration time is set by the bottleneck stage
//! alone — no fill/drain bubble. The price is *parameter staleness*
//! (§II-B of the RaNNC paper): a micro-batch's forward and backward may
//! use different weight versions, which "often results in training that
//! diverges or degrades the quality of learning results". The numeric
//! consequences are demonstrated in `rannc-train`; here we only model
//! throughput.
//!
//! Steady-state model: per iteration each stage processes `MB`
//! micro-batches forward+backward back-to-back; gradient all-reduce
//! overlaps with the next iteration's compute (2BW's design), so only the
//! excess beyond compute shows up; the optimizer step is serialized.

use crate::spec::{PipelineSpec, SimResult};

/// Simulate one steady-state iteration of the 2BW asynchronous pipeline.
pub fn simulate_async_2bw(spec: &PipelineSpec) -> SimResult {
    let mb = spec.microbatches as f64;
    let mut bottleneck: f64 = 0.0;
    let mut busy = Vec::with_capacity(spec.stages.len());
    for (i, st) in spec.stages.iter().enumerate() {
        let comm = spec.comm_time(i);
        let t = mb * (st.fwd_time + st.bwd_time + comm);
        busy.push(mb * (st.fwd_time + st.bwd_time));
        bottleneck = bottleneck.max(t);
    }
    // all-reduce overlaps with compute; only the excess is exposed
    let exposed_allreduce = (spec.allreduce_time() - bottleneck).max(0.0);
    let iteration = bottleneck + exposed_allreduce + spec.optimizer_time();
    SimResult::new(iteration, spec.batch_size, busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PipelineSpec, StageSpec};
    use crate::sync::{simulate_sync, SyncSchedule};
    use rannc_hw::{ClusterSpec, LinkSpec};

    fn spec(stages: usize, mb: usize) -> PipelineSpec {
        PipelineSpec {
            stages: (0..stages)
                .map(|_| StageSpec {
                    fwd_time: 0.01,
                    bwd_time: 0.02,
                    comm_to_next_bytes: 0,
                    grad_bytes: 0,
                    replicas: 1,
                    tensor_parallel: 1,
                })
                .collect(),
            microbatches: mb,
            replica_factor: 1,
            batch_size: 64,
            link: LinkSpec::nvlink(),
            cluster: ClusterSpec::v100_cluster(1),
            cost: rannc_cost::CostFactors::identity(),
        }
    }

    #[test]
    fn async_beats_sync_via_no_bubble() {
        // Same pipeline: async has no fill/drain bubble, so it must be
        // faster, and the gap must equal the bubble for equal stages.
        let s = spec(4, 8);
        let sync = simulate_sync(&s, SyncSchedule::FillDrain, false).result;
        let async_ = simulate_async_2bw(&s);
        assert!(async_.iteration_time < sync.iteration_time);
        // async time = MB*(f+b) for equal stages
        assert!((async_.iteration_time - 8.0 * 0.03).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_only() {
        let mut s = spec(3, 4);
        s.stages[2].fwd_time = 0.1;
        s.stages[2].bwd_time = 0.1;
        let r = simulate_async_2bw(&s);
        assert!((r.iteration_time - 4.0 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_one_for_uniform_stages() {
        let r = simulate_async_2bw(&spec(4, 8));
        assert!((r.utilization - 1.0).abs() < 1e-9);
    }
}
