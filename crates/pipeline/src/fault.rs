//! Fault-aware campaign simulation: goodput and MTTR under failures.
//!
//! [`simulate_faulted`] runs a whole training *campaign* (many
//! iterations) of a partition plan on a cluster while consuming a seeded
//! [`FaultPlan`]. Latency faults (stragglers, link degradation, transient
//! communication errors) are folded into the per-iteration cost model;
//! permanent device failures trigger a recovery whose cost depends on the
//! configured policy:
//!
//! * [`RecoveryPolicy::Degrade`] — keep the plan. If a hot spare absorbs
//!   the loss, nothing changes; otherwise drop one whole pipeline replica
//!   (`R → R − 1`), stretching the iteration by `R / (R − 1)`. With no
//!   redundancy left (`R = 1`) the campaign halts.
//! * [`RecoveryPolicy::Replan`] — pay a re-planning cost and run
//!   [`Rannc::repartition`] against the degraded cluster's conservative
//!   planning view, then continue on the elastically re-partitioned plan.
//!
//! Every recovery also pays the failure-detection timeout, the
//! checkpoint-restore cost, and the re-execution of iterations lost since
//! the last checkpoint. The report exposes **goodput** (useful samples
//! per wall-clock second, re-executed work excluded) and **MTTR** (mean
//! time from failure to the pipeline doing useful work again).
//!
//! Everything is deterministic: the fault plan is an explicit script and
//! probabilistic events enter only through their seeded expectation.

use crate::spec::PipelineSpec;
use crate::sync::{simulate_sync, SyncSchedule};
use crate::{spec_from_plan, PlanSpecError};
use rannc_core::{PartitionPlan, Rannc};
use rannc_cost::CostModel;
use rannc_faults::FaultPlan;
use rannc_hw::ClusterSpec;

/// How the campaign reacts to a permanent device loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Keep the plan; shed a pipeline replica when no spare is available.
    Degrade,
    /// Re-partition for the surviving devices (elastic recovery).
    Replan,
}

/// Knobs of a fault-injected campaign simulation.
#[derive(Debug, Clone, Copy)]
pub struct FaultSimConfig {
    /// Iterations the campaign must complete.
    pub iterations: usize,
    /// A checkpoint is taken every this many iterations (at iteration
    /// boundaries; iteration 0 is always checkpointed).
    pub checkpoint_every: usize,
    /// Wall time from a device dying to the failure being detected, s.
    pub detect_timeout: f64,
    /// Wall time to load the last checkpoint onto the survivors, s.
    pub restore_cost: f64,
    /// Extra wall time the [`RecoveryPolicy::Replan`] policy pays for
    /// re-partitioning and re-deploying stages, s.
    pub replan_cost: f64,
    /// The recovery policy.
    pub policy: RecoveryPolicy,
}

impl Default for FaultSimConfig {
    fn default() -> Self {
        FaultSimConfig {
            iterations: 100,
            checkpoint_every: 10,
            detect_timeout: 5.0,
            restore_cost: 2.0,
            replan_cost: 15.0,
            policy: RecoveryPolicy::Replan,
        }
    }
}

/// One recovery the campaign went through.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Global rank of the failed device.
    pub rank: usize,
    /// Iteration at which the failure struck.
    pub at_iter: usize,
    /// Iterations of progress discarded (since the last checkpoint).
    pub lost_iters: usize,
    /// Wall time from failure to useful work resuming: detection +
    /// restore (+ replan) + re-execution of the lost iterations.
    pub downtime: f64,
    /// Per-iteration wall time after the recovery, s.
    pub new_iteration_time: f64,
    /// Whether the plan was re-partitioned (vs. kept/degraded).
    pub replanned: bool,
}

/// What a fault-injected campaign reports.
#[derive(Debug, Clone)]
pub struct FaultSimReport {
    /// Total wall time of the campaign, s.
    pub wall_time: f64,
    /// Iterations actually completed (== the target unless halted).
    pub completed_iterations: usize,
    /// Useful samples per wall second: `completed × batch / wall`.
    pub goodput: f64,
    /// Every recovery, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// True when the campaign stopped early (no redundancy left under
    /// [`RecoveryPolicy::Degrade`], or replanning found no feasible plan).
    pub halted: bool,
}

impl FaultSimReport {
    /// Mean time to recovery across all recoveries (0 when fault-free).
    pub fn mttr(&self) -> f64 {
        if self.recoveries.is_empty() {
            0.0
        } else {
            self.recoveries.iter().map(|r| r.downtime).sum::<f64>() / self.recoveries.len() as f64
        }
    }
}

/// Per-iteration wall time of `plan` on `cluster` with the fault plan's
/// latency events folded in.
fn faulted_iteration_time(
    plan: &PartitionPlan,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    faults: &FaultPlan,
) -> Result<f64, PlanSpecError> {
    let mut spec = spec_from_plan(plan, cost, cluster)?;
    let assignment = plan
        .device_assignment(cluster)
        .map_err(PlanSpecError::BadAssignment)?;
    apply_latency_faults(&mut spec, &assignment, faults);
    Ok(simulate_sync(&spec, SyncSchedule::FillDrain, false)
        .result
        .iteration_time)
}

/// Fold stragglers, link degradation and transient-error retries into a
/// spec's costs. Deterministic: transient errors enter as the expected
/// retransmission factor `1 / (1 − p)`.
fn apply_latency_faults(
    spec: &mut PipelineSpec,
    assignment: &[Vec<Vec<usize>>],
    faults: &FaultPlan,
) {
    // A straggler slows the stage its rank is assigned to; synchronous
    // training waits for the slowest replica, so any replica straggling
    // slows the whole stage. Stragglers on unassigned (spare) ranks are
    // harmless.
    for replica in assignment {
        for (stage, ranks) in replica.iter().enumerate() {
            let worst = ranks
                .iter()
                .map(|&r| faults.slowdown_for(r))
                .fold(1.0f64, f64::max);
            if worst > 1.0 {
                spec.stages[stage].fwd_time *= worst;
                spec.stages[stage].bwd_time *= worst;
            }
        }
    }
    // Link degradation and expected transient-error retries stretch every
    // transfer; both are modelled by inflating the byte counts the cost
    // model converts to time.
    let stretch = (1.0 / faults.link_factor()) * (1.0 / (1.0 - faults.comm_error_prob()));
    if stretch > 1.0 {
        for st in &mut spec.stages {
            st.comm_to_next_bytes = (st.comm_to_next_bytes as f64 * stretch).ceil() as usize;
            st.grad_bytes = (st.grad_bytes as f64 * stretch).ceil() as usize;
        }
    }
}

/// Simulate a training campaign of `cfg.iterations` iterations under a
/// seeded fault plan. Fault-plan ranks are *global device ranks*.
///
/// Deterministic: the same `(plan, cluster, faults, cfg)` always yields
/// the same report.
pub fn simulate_faulted(
    rannc: &Rannc,
    plan: &PartitionPlan,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    faults: &FaultPlan,
    cfg: &FaultSimConfig,
) -> Result<FaultSimReport, PlanSpecError> {
    assert!(cfg.checkpoint_every > 0, "checkpoint_every must be > 0");
    let graph = cost.graph();
    let mut cluster = cluster.clone();
    let mut plan = plan.clone();
    let mut iter_time = faulted_iteration_time(&plan, cost, &cluster, faults)?;

    let mut wall = 0.0f64;
    let mut done = 0usize;
    let mut recoveries = Vec::new();
    let mut halted = false;

    for (rank, at_iter) in faults.device_failures() {
        let at = at_iter.min(cfg.iterations);
        wall += (at - done) as f64 * iter_time;
        done = at;
        if done >= cfg.iterations {
            break;
        }

        let ckpt_iter = (at / cfg.checkpoint_every) * cfg.checkpoint_every;
        let lost = at - ckpt_iter;
        let mut downtime = cfg.detect_timeout + cfg.restore_cost;
        cluster = match cluster.without_device(cluster.rank(rank)) {
            Ok(degraded) => degraded,
            Err(_) => {
                // the last healthy device is gone: nothing to recover onto
                recoveries.push(RecoveryEvent {
                    rank,
                    at_iter: at,
                    lost_iters: lost,
                    downtime,
                    new_iteration_time: f64::INFINITY,
                    replanned: false,
                });
                wall += downtime;
                halted = true;
                break;
            }
        };
        let mut replanned = false;

        match cfg.policy {
            RecoveryPolicy::Degrade => {
                if cluster.healthy_devices() >= plan.total_devices() {
                    // a hot spare absorbs the loss; the plan still fits
                } else if plan.replica_factor > 1 {
                    // shed one whole pipeline replica: the same global
                    // batch over R−1 replicas stretches the iteration
                    let r = plan.replica_factor as f64;
                    plan.replica_factor -= 1;
                    iter_time *= r / (r - 1.0);
                } else {
                    // no redundancy left: the campaign cannot continue
                    recoveries.push(RecoveryEvent {
                        rank,
                        at_iter: at,
                        lost_iters: lost,
                        downtime,
                        new_iteration_time: f64::INFINITY,
                        replanned: false,
                    });
                    wall += downtime;
                    halted = true;
                    break;
                }
            }
            RecoveryPolicy::Replan => {
                downtime += cfg.replan_cost;
                let _replan = rannc_obs::trace::span("replan", "faults")
                    .arg_i("rank", rank as i64)
                    .arg_i("at_iter", at as i64);
                match rannc.repartition(graph, &plan, &cluster) {
                    Ok(new_plan) => {
                        // evaluate the new plan on the conservative view
                        // it was planned for
                        let view = cluster.planning_view();
                        iter_time = faulted_iteration_time(&new_plan, cost, &view, faults)?;
                        plan = new_plan;
                        replanned = true;
                    }
                    Err(_) => {
                        recoveries.push(RecoveryEvent {
                            rank,
                            at_iter: at,
                            lost_iters: lost,
                            downtime,
                            new_iteration_time: f64::INFINITY,
                            replanned: false,
                        });
                        wall += downtime;
                        halted = true;
                        break;
                    }
                }
            }
        }

        // re-execute the iterations lost since the checkpoint at the
        // post-recovery speed; they are wall time but not fresh progress
        downtime += lost as f64 * iter_time;
        wall += downtime;
        recoveries.push(RecoveryEvent {
            rank,
            at_iter: at,
            lost_iters: lost,
            downtime,
            new_iteration_time: iter_time,
            replanned,
        });
    }

    if !halted {
        wall += (cfg.iterations - done) as f64 * iter_time;
        done = cfg.iterations;
    }

    let goodput = if wall > 0.0 {
        done as f64 * plan.batch_size as f64 / wall
    } else {
        0.0
    };
    let report = FaultSimReport {
        wall_time: wall,
        completed_iterations: done,
        goodput,
        recoveries,
        halted,
    };
    publish_fault_metrics(&report);
    Ok(report)
}

/// Export a campaign report to the metrics registry: recovery/replan
/// counters, per-recovery downtime histogram, MTTR and goodput gauges.
fn publish_fault_metrics(report: &FaultSimReport) {
    use rannc_obs::metrics;
    metrics::counter("faults.recoveries").add(report.recoveries.len() as u64);
    metrics::counter("faults.replans")
        .add(report.recoveries.iter().filter(|r| r.replanned).count() as u64);
    let downtime = metrics::histogram("faults.downtime_seconds");
    for r in &report.recoveries {
        if r.downtime.is_finite() {
            downtime.observe(r.downtime);
        }
    }
    metrics::gauge("faults.mttr_seconds").set(report.mttr());
    metrics::gauge("faults.goodput").set(report.goodput);
    metrics::gauge("faults.halted").set(if report.halted { 1.0 } else { 0.0 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_core::PartitionConfig;
    use rannc_faults::FaultEvent;
    use rannc_hw::DeviceSpec;
    use rannc_models::{mlp_graph, MlpConfig};
    use rannc_profile::{Profiler, ProfilerOptions};

    fn setup(nodes: usize) -> (rannc_graph::TaskGraph, ClusterSpec, Rannc) {
        let g = mlp_graph(&MlpConfig::deep(64, 64, 8, 10));
        let cluster = ClusterSpec::v100_cluster(nodes);
        let rannc = Rannc::new(PartitionConfig::new(32).with_k(8));
        (g, cluster, rannc)
    }

    fn run(policy: RecoveryPolicy, faults: &FaultPlan, nodes: usize) -> FaultSimReport {
        let (g, cluster, rannc) = setup(nodes);
        let plan = rannc.partition(&g, &cluster).unwrap();
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        // long campaign: recovery overheads must not dominate the
        // steady-state throughput difference between the policies (the
        // simulation is O(#failures), so campaign length is free)
        let cfg = FaultSimConfig {
            iterations: 200_000,
            checkpoint_every: 1000,
            policy,
            ..FaultSimConfig::default()
        };
        simulate_faulted(&rannc, &plan, &profiler, &cluster, faults, &cfg).unwrap()
    }

    fn one_failure() -> FaultPlan {
        FaultPlan::new(7).with_event(FaultEvent::DeviceFail {
            rank: 0,
            at_iter: 50_000,
        })
    }

    #[test]
    fn fault_free_campaign_has_no_recoveries() {
        let r = run(RecoveryPolicy::Replan, &FaultPlan::new(1), 2);
        assert!(r.recoveries.is_empty());
        assert!(!r.halted);
        assert_eq!(r.completed_iterations, 200_000);
        assert_eq!(r.mttr(), 0.0);
        assert!(r.goodput > 0.0);
    }

    #[test]
    fn simulation_is_seed_deterministic() {
        let faults = one_failure();
        let a = run(RecoveryPolicy::Replan, &faults, 2);
        let b = run(RecoveryPolicy::Replan, &faults, 2);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.goodput, b.goodput);
        assert_eq!(a.mttr(), b.mttr());
        assert_eq!(a.recoveries.len(), b.recoveries.len());
    }

    #[test]
    fn replan_beats_degrade_on_device_loss() {
        let faults = one_failure();
        let degrade = run(RecoveryPolicy::Degrade, &faults, 2);
        let replan = run(RecoveryPolicy::Replan, &faults, 2);
        assert!(!degrade.halted && !replan.halted);
        assert_eq!(degrade.recoveries.len(), 1);
        assert_eq!(replan.recoveries.len(), 1);
        assert!(replan.recoveries[0].replanned);
        assert!(
            replan.goodput > degrade.goodput,
            "replan {} should beat degrade {}",
            replan.goodput,
            degrade.goodput
        );
    }

    #[test]
    fn recovery_accounts_detection_restore_and_rework() {
        let faults = one_failure();
        let clean = run(RecoveryPolicy::Replan, &FaultPlan::new(1), 2);
        let faulted = run(RecoveryPolicy::Replan, &faults, 2);
        let rec = &faulted.recoveries[0];
        assert_eq!(rec.at_iter, 50_000);
        assert_eq!(rec.lost_iters, 0, "failure lands on a checkpoint");
        // downtime at least detection + restore + replan
        assert!(rec.downtime >= 5.0 + 2.0 + 15.0 - 1e-9);
        assert!(faulted.wall_time > clean.wall_time);
        assert!(faulted.goodput < clean.goodput);
        assert!(faulted.mttr() >= rec.downtime - 1e-9);
    }

    #[test]
    fn lost_work_since_checkpoint_is_paid() {
        let mid = FaultPlan::new(7).with_event(FaultEvent::DeviceFail {
            rank: 0,
            at_iter: 50_700,
        });
        let r = run(RecoveryPolicy::Replan, &mid, 2);
        assert_eq!(r.recoveries[0].lost_iters, 700);
        let on_ckpt = run(RecoveryPolicy::Replan, &one_failure(), 2);
        assert!(r.mttr() > on_ckpt.mttr());
    }

    #[test]
    fn degrade_without_redundancy_halts() {
        // a single node: the plan has replica_factor limited; engineer a
        // cascade that exhausts redundancy
        let faults = FaultPlan::new(3)
            .with_event(FaultEvent::DeviceFail {
                rank: 0,
                at_iter: 20,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 1,
                at_iter: 40,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 2,
                at_iter: 60,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 3,
                at_iter: 80,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 4,
                at_iter: 100,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 5,
                at_iter: 120,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 6,
                at_iter: 140,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 7,
                at_iter: 160,
            });
        let r = run(RecoveryPolicy::Degrade, &faults, 1);
        assert!(r.halted, "losing every device must halt a degrade-only run");
        assert!(r.completed_iterations < 200_000);
    }

    #[test]
    fn latency_faults_slow_the_campaign_without_recovery() {
        let slow = FaultPlan::new(9)
            .with_event(FaultEvent::Straggler {
                rank: 0,
                slowdown: 3.0,
            })
            .with_event(FaultEvent::LinkDegrade { factor: 0.25 })
            .with_event(FaultEvent::TransientCommError { prob: 0.2 });
        let clean = run(RecoveryPolicy::Replan, &FaultPlan::new(1), 2);
        let degraded = run(RecoveryPolicy::Replan, &slow, 2);
        assert!(degraded.recoveries.is_empty());
        assert!(!degraded.halted);
        assert!(
            degraded.goodput < clean.goodput,
            "latency faults must cost goodput: {} vs {}",
            degraded.goodput,
            clean.goodput
        );
    }
}
