//! # rannc-faults
//!
//! Deterministic, seeded fault injection for pipeline training.
//!
//! A [`FaultPlan`] is an explicit script of failure events plus a seed
//! driving any probabilistic draws (transient communication errors). The
//! same plan is consumed by two very different executors:
//!
//! * `rannc-pipeline`'s analytical simulator, which folds the events into
//!   its cost model to predict goodput and MTTR under failures, and
//! * `rannc-train`'s threaded trainer, which physically kills stage
//!   threads and exercises detection, checkpoint restore, and resume.
//!
//! Because the plan is data (not callbacks) and every random draw comes
//! from a splitmix64 stream derived from the seed, a run under faults is
//! exactly reproducible: same seed, same failures, same recovery — the
//! property the bit-identical recovery tests rely on.

use serde::{Deserialize, Serialize};

pub mod churn;

pub use churn::{ClusterEvent, ClusterEventTrace, TimedEvent, TraceError};

/// One scripted failure event. Ranks are *global device ranks* for the
/// simulator and *stage indices* for the threaded trainer — each consumer
/// documents its interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Permanent loss of one device at the start of iteration `at_iter`
    /// (0-based). The device stays dead for the rest of the run.
    DeviceFail {
        /// Failing rank.
        rank: usize,
        /// Iteration at which the failure manifests.
        at_iter: usize,
    },
    /// A persistently slow rank: all its compute takes `slowdown`× the
    /// nominal time (`slowdown >= 1`).
    Straggler {
        /// Straggling rank.
        rank: usize,
        /// Multiplicative compute slowdown, `>= 1`.
        slowdown: f64,
    },
    /// All interconnect bandwidth degraded: transfer times scale by
    /// `1 / factor` (`0 < factor <= 1`, e.g. `0.5` halves bandwidth).
    LinkDegrade {
        /// Remaining fraction of nominal bandwidth.
        factor: f64,
    },
    /// Each communication attempt independently fails with probability
    /// `prob` and must be retried (drawn from the plan's seeded stream).
    TransientCommError {
        /// Per-transfer failure probability in `[0, 1)`.
        prob: f64,
    },
}

/// A deterministic fault schedule: scripted events plus the seed that
/// drives probabilistic draws.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan (fault-free run) with a seed for probabilistic events.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder-style event append.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.push(event);
        self
    }

    /// Append an event, validating its parameters.
    pub fn push(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Straggler { slowdown, .. } => {
                assert!(slowdown >= 1.0, "straggler slowdown must be >= 1")
            }
            FaultEvent::LinkDegrade { factor } => {
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "link degrade factor must be in (0, 1]"
                )
            }
            FaultEvent::TransientCommError { prob } => {
                assert!((0.0..1.0).contains(&prob), "comm error prob in [0, 1)")
            }
            FaultEvent::DeviceFail { .. } => {}
        }
        self.events.push(event);
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scripted events in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Device failures as `(rank, at_iter)`, ordered by iteration.
    pub fn device_failures(&self) -> Vec<(usize, usize)> {
        let mut fails: Vec<(usize, usize)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::DeviceFail { rank, at_iter } => Some((rank, at_iter)),
                _ => None,
            })
            .collect();
        fails.sort_by_key(|&(rank, at_iter)| (at_iter, rank));
        fails
    }

    /// The first device failure at exactly iteration `iter`, if any.
    pub fn failure_at(&self, iter: usize) -> Option<usize> {
        self.device_failures()
            .into_iter()
            .find(|&(_, at)| at == iter)
            .map(|(rank, _)| rank)
    }

    /// Compute slowdown factor for `rank` (product of its stragglers; 1.0
    /// when the rank is healthy).
    pub fn slowdown_for(&self, rank: usize) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Straggler { rank: r, slowdown } if r == rank => Some(slowdown),
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// Remaining link bandwidth fraction (product of all degrades; 1.0
    /// when links are healthy).
    pub fn link_factor(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LinkDegrade { factor } => Some(factor),
                _ => None,
            })
            .product::<f64>()
            .clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Per-transfer failure probability: `1 - Π(1 - prob_i)` over all
    /// transient-error events (independent failure sources compose).
    pub fn comm_error_prob(&self) -> f64 {
        let survive: f64 = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::TransientCommError { prob } => Some(1.0 - prob),
                _ => None,
            })
            .product();
        1.0 - survive
    }

    /// Seeded stream for this plan's probabilistic draws. Consumers must
    /// create it once per run so identical runs see identical draws.
    pub fn rng(&self) -> FaultRng {
        FaultRng::new(self.seed)
    }
}

/// Splitmix64 stream used for transient-fault draws.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw: true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_over_mixed_plan() {
        let plan = FaultPlan::new(7)
            .with_event(FaultEvent::DeviceFail {
                rank: 3,
                at_iter: 10,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 1,
                at_iter: 4,
            })
            .with_event(FaultEvent::Straggler {
                rank: 2,
                slowdown: 1.5,
            })
            .with_event(FaultEvent::LinkDegrade { factor: 0.5 })
            .with_event(FaultEvent::TransientCommError { prob: 0.1 });

        assert_eq!(plan.device_failures(), vec![(1, 4), (3, 10)]);
        assert_eq!(plan.failure_at(4), Some(1));
        assert_eq!(plan.failure_at(5), None);
        assert_eq!(plan.slowdown_for(2), 1.5);
        assert_eq!(plan.slowdown_for(0), 1.0);
        assert_eq!(plan.link_factor(), 0.5);
        assert!((plan.comm_error_prob() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn comm_error_probs_compose() {
        let plan = FaultPlan::new(0)
            .with_event(FaultEvent::TransientCommError { prob: 0.5 })
            .with_event(FaultEvent::TransientCommError { prob: 0.5 });
        assert!((plan.comm_error_prob() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rng_deterministic_per_seed() {
        let plan = FaultPlan::new(42).with_event(FaultEvent::TransientCommError { prob: 0.3 });
        let draws_a: Vec<bool> = {
            let mut r = plan.rng();
            (0..64).map(|_| r.chance(0.3)).collect()
        };
        let draws_b: Vec<bool> = {
            let mut r = plan.rng();
            (0..64).map(|_| r.chance(0.3)).collect()
        };
        assert_eq!(draws_a, draws_b);

        let mut other = FaultPlan::new(43).rng();
        let draws_c: Vec<bool> = (0..64).map(|_| other.chance(0.3)).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn rejects_speedup_straggler() {
        FaultPlan::new(0).push(FaultEvent::Straggler {
            rank: 0,
            slowdown: 0.5,
        });
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_zero_link_factor() {
        FaultPlan::new(0).push(FaultEvent::LinkDegrade { factor: 0.0 });
    }

    #[test]
    fn empty_plan_is_neutral() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_empty());
        assert!(plan.device_failures().is_empty());
        assert_eq!(plan.slowdown_for(0), 1.0);
        assert_eq!(plan.link_factor(), 1.0);
        assert_eq!(plan.comm_error_prob(), 0.0);
    }
}
