//! Cluster-churn event streams: continuous membership and health change.
//!
//! Where a [`crate::FaultPlan`] scripts *failures within one training
//! run*, a [`ClusterEventTrace`] scripts the *life of the cluster
//! itself*: devices leave and come back, parts throttle and recover,
//! fresh nodes join. The trace is plain data plus the seed that
//! generated it, so a churn campaign replays exactly — same seed, same
//! events, same replan decisions.
//!
//! The on-disk format is JSON, schema version 1:
//!
//! ```json
//! {
//!   "version": 1,
//!   "seed": 7,
//!   "events": [
//!     {"at": 10, "kind": "leave",   "node": 0, "local": 3},
//!     {"at": 25, "kind": "degrade", "node": 1, "local": 0, "factor": 0.5},
//!     {"at": 40, "kind": "recover", "node": 0, "local": 3},
//!     {"at": 90, "kind": "join"}
//!   ]
//! }
//! ```

use crate::FaultRng;
use rannc_hw::{ClusterSpec, DeviceRank, SpecError};
use serde::{Deserialize, Serialize};

/// One cluster-membership or health change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusterEvent {
    /// A device fails or is drained (leaves the healthy pool).
    Leave {
        /// The departing device.
        rank: DeviceRank,
    },
    /// A previously lost device returns to service.
    Recover {
        /// The returning device.
        rank: DeviceRank,
    },
    /// A device throttles to `factor` of its current compute efficiency
    /// (`0 < factor <= 1`; stacking degrades multiply).
    Degrade {
        /// The throttling device.
        rank: DeviceRank,
        /// Remaining fraction of current efficiency.
        factor: f64,
    },
    /// A fresh node of template devices joins at the end of the rank
    /// space (existing ranks are untouched).
    Join,
}

impl ClusterEvent {
    /// Apply the event to a cluster, yielding the changed cluster.
    /// `Leave` propagates the hw layer's typed [`SpecError`] (last
    /// device, out-of-shape rank); every other event is total.
    pub fn apply(&self, cluster: &ClusterSpec) -> Result<ClusterSpec, SpecError> {
        match *self {
            ClusterEvent::Leave { rank } => cluster.without_device(rank),
            ClusterEvent::Recover { rank } => Ok(cluster.clone().with_device_restored(rank)),
            ClusterEvent::Degrade { rank, factor } => {
                Ok(cluster.clone().with_degraded_device(rank, factor))
            }
            ClusterEvent::Join => Ok(cluster.clone().with_joined_node()),
        }
    }

    /// Short lowercase tag used by the JSON schema and decision logs.
    pub fn kind(&self) -> &'static str {
        match self {
            ClusterEvent::Leave { .. } => "leave",
            ClusterEvent::Recover { .. } => "recover",
            ClusterEvent::Degrade { .. } => "degrade",
            ClusterEvent::Join => "join",
        }
    }
}

/// A cluster event pinned to the training-iteration clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Iteration at which the event manifests (0-based, non-decreasing
    /// within a trace).
    pub at_iter: usize,
    /// What happens.
    pub event: ClusterEvent,
}

/// Why a serialized trace is unusable.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes are not a JSON document (including non-UTF8 input).
    Parse(String),
    /// The document parses but violates the schema.
    Schema(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read event trace: {e}"),
            TraceError::Parse(e) => write!(f, "event trace is not valid JSON: {e}"),
            TraceError::Schema(e) => write!(f, "event trace violates schema v1: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A deterministic cluster-churn schedule: the event list plus the seed
/// that generated it (0 for hand-written traces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEventTrace {
    seed: u64,
    events: Vec<TimedEvent>,
}

impl ClusterEventTrace {
    /// An empty trace (no churn) carrying a seed.
    pub fn new(seed: u64) -> Self {
        ClusterEventTrace {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder-style event append. Panics on a decreasing iteration or
    /// an out-of-range degrade factor — traces are scripts, and a
    /// malformed script is a programming error at construction time.
    pub fn with_event(mut self, at_iter: usize, event: ClusterEvent) -> Self {
        self.push(at_iter, event);
        self
    }

    /// Append an event, validating trace monotonicity and parameters.
    pub fn push(&mut self, at_iter: usize, event: ClusterEvent) {
        if let Some(last) = self.events.last() {
            assert!(
                at_iter >= last.at_iter,
                "events must be appended in non-decreasing iteration order"
            );
        }
        if let ClusterEvent::Degrade { factor, .. } = event {
            assert!(
                factor > 0.0 && factor <= 1.0,
                "degrade factor must be in (0, 1]"
            );
        }
        self.events.push(TimedEvent { at_iter, event });
    }

    /// The generating seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All events in iteration order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// True when the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generate a seeded random trace of `n` events against `cluster`.
    ///
    /// Deterministic: the same `(seed, n, cluster, mean_gap)` always
    /// yields the same trace. Each event is drawn valid against the
    /// *simulated* cluster state at its time — a `Leave` never removes
    /// the last healthy device, a `Recover` targets an actually-lost
    /// device — so generated traces replay cleanly end to end.
    /// `mean_gap` is the average iteration spacing between events.
    pub fn generate(seed: u64, n: usize, cluster: &ClusterSpec, mean_gap: usize) -> Self {
        let mut rng = FaultRng::new(seed);
        let mut state = cluster.clone();
        let mut trace = ClusterEventTrace::new(seed);
        let mut at = 0usize;
        while trace.events.len() < n {
            at += 1 + (rng.unit_f64() * 2.0 * mean_gap.max(1) as f64) as usize;
            let lost: Vec<DeviceRank> = state.lost_devices.clone();
            let roll = rng.unit_f64();
            // weights: leave 0.40, degrade 0.25, recover 0.20, join 0.15 —
            // infeasible picks fall through to the next arm
            let event = if roll < 0.40 && state.healthy_devices() > 1 {
                Some(ClusterEvent::Leave {
                    rank: Self::pick_healthy(&state, &mut rng),
                })
            } else if roll < 0.65 {
                let factor = 0.25 + 0.70 * rng.unit_f64(); // (0.25, 0.95)
                Some(ClusterEvent::Degrade {
                    rank: Self::pick_healthy(&state, &mut rng),
                    factor,
                })
            } else if roll < 0.85 && !lost.is_empty() {
                let i = (rng.next_u64() % lost.len() as u64) as usize;
                Some(ClusterEvent::Recover { rank: lost[i] })
            } else if roll >= 0.85 {
                Some(ClusterEvent::Join)
            } else {
                None // infeasible arm this round; advance time and retry
            };
            if let Some(event) = event {
                state = event.apply(&state).expect("generated event must apply");
                trace.push(at, event);
            }
        }
        trace
    }

    fn pick_healthy(state: &ClusterSpec, rng: &mut FaultRng) -> DeviceRank {
        let healthy: Vec<DeviceRank> = (0..state.total_devices())
            .map(|g| state.rank(g))
            .filter(|r| !state.is_lost(*r))
            .collect();
        healthy[(rng.next_u64() % healthy.len() as u64) as usize]
    }

    /// Replay the whole trace from `cluster`, returning the final state.
    /// Stops with the hw layer's typed error if any event is invalid
    /// against the evolved state.
    pub fn final_state(&self, cluster: &ClusterSpec) -> Result<ClusterSpec, SpecError> {
        let mut state = cluster.clone();
        for e in &self.events {
            state = e.event.apply(&state)?;
        }
        Ok(state)
    }

    /// Serialize to the schema-v1 JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let body = match e.event {
                ClusterEvent::Leave { rank } => format!(
                    "\"kind\": \"leave\", \"node\": {}, \"local\": {}",
                    rank.node, rank.local
                ),
                ClusterEvent::Recover { rank } => format!(
                    "\"kind\": \"recover\", \"node\": {}, \"local\": {}",
                    rank.node, rank.local
                ),
                ClusterEvent::Degrade { rank, factor } => format!(
                    "\"kind\": \"degrade\", \"node\": {}, \"local\": {}, \"factor\": {}",
                    rank.node,
                    rank.local,
                    rannc_obs::json::fmt_f64(factor)
                ),
                ClusterEvent::Join => "\"kind\": \"join\"".to_string(),
            };
            out.push_str(&format!("    {{\"at\": {}, {}}}", e.at_iter, body));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a schema-v1 JSON document.
    pub fn from_json(s: &str) -> Result<Self, TraceError> {
        use rannc_obs::json::{self, Value};
        let doc = json::parse(s).map_err(|e| TraceError::Parse(e.to_string()))?;
        if !doc.is_obj() {
            return Err(TraceError::Schema("top level must be an object".into()));
        }
        let version = doc
            .get("version")
            .and_then(Value::as_f64)
            .ok_or_else(|| TraceError::Schema("missing \"version\"".into()))?;
        if version != 1.0 {
            return Err(TraceError::Schema(format!("unsupported version {version}")));
        }
        // the JSON layer stores numbers as f64, which silently truncates
        // u64 seeds above 2^53 — recover the seed from the raw text so a
        // save/load round trip preserves it bit-exactly
        let seed = seed_from_raw(s)
            .or_else(|| doc.get("seed").and_then(Value::as_f64).map(|v| v as u64))
            .unwrap_or(0);
        let mut trace = ClusterEventTrace::new(seed);
        let events = doc
            .get("events")
            .and_then(Value::as_arr)
            .ok_or_else(|| TraceError::Schema("missing \"events\" array".into()))?;
        for (i, ev) in events.iter().enumerate() {
            let bad = |what: &str| TraceError::Schema(format!("event {i}: {what}"));
            let at = ev
                .get("at")
                .and_then(Value::as_f64)
                .ok_or_else(|| bad("missing \"at\""))? as usize;
            if let Some(last) = trace.events.last() {
                if at < last.at_iter {
                    return Err(bad("decreasing \"at\""));
                }
            }
            let kind = ev
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("missing \"kind\""))?;
            let rank = || -> Result<DeviceRank, TraceError> {
                let node = ev
                    .get("node")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad("missing \"node\""))? as usize;
                let local = ev
                    .get("local")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad("missing \"local\""))? as usize;
                Ok(DeviceRank { node, local })
            };
            let event = match kind {
                "leave" => ClusterEvent::Leave { rank: rank()? },
                "recover" => ClusterEvent::Recover { rank: rank()? },
                "degrade" => {
                    let factor = ev
                        .get("factor")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| bad("missing \"factor\""))?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(bad("\"factor\" outside (0, 1]"));
                    }
                    ClusterEvent::Degrade {
                        rank: rank()?,
                        factor,
                    }
                }
                "join" => ClusterEvent::Join,
                other => return Err(bad(&format!("unknown kind {other:?}"))),
            };
            trace.events.push(TimedEvent { at_iter: at, event });
        }
        Ok(trace)
    }

    /// Write the trace to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a trace from a file with typed errors: I/O problems surface
    /// as [`TraceError::Io`], non-UTF8 bytes and malformed JSON as
    /// [`TraceError::Parse`], schema violations as
    /// [`TraceError::Schema`] — never a panic.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, TraceError> {
        let bytes = std::fs::read(path).map_err(TraceError::Io)?;
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| TraceError::Parse(format!("not UTF-8: {e}")))?;
        Self::from_json(text)
    }
}

/// Scan the raw document for `"seed": <digits>` — full u64 precision,
/// unlike the f64-backed JSON value layer.
fn seed_from_raw(s: &str) -> Option<u64> {
    let i = s.find("\"seed\"")? + "\"seed\"".len();
    let rest = s[i..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map_or(rest.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(node: usize, local: usize) -> DeviceRank {
        DeviceRank { node, local }
    }

    #[test]
    fn apply_walks_the_cluster_lifecycle() {
        let c = ClusterSpec::v100_cluster(1);
        let c = ClusterEvent::Leave { rank: rank(0, 3) }.apply(&c).unwrap();
        assert_eq!(c.healthy_devices(), 7);
        let c = ClusterEvent::Degrade {
            rank: rank(0, 0),
            factor: 0.5,
        }
        .apply(&c)
        .unwrap();
        assert!(c.is_heterogeneous());
        let c = ClusterEvent::Recover { rank: rank(0, 3) }
            .apply(&c)
            .unwrap();
        assert_eq!(c.healthy_devices(), 8);
        let c = ClusterEvent::Join.apply(&c).unwrap();
        assert_eq!(c.nodes, 2);
        assert_eq!(c.healthy_devices(), 16);
    }

    #[test]
    fn leave_of_last_device_propagates_spec_error() {
        let mut c = ClusterSpec::v100_cluster(1);
        for local in 0..7 {
            c = ClusterEvent::Leave {
                rank: rank(0, local),
            }
            .apply(&c)
            .unwrap();
        }
        let err = ClusterEvent::Leave { rank: rank(0, 7) }.apply(&c);
        assert_eq!(err, Err(SpecError::LastDevice { rank: rank(0, 7) }));
    }

    #[test]
    fn generation_is_deterministic_and_replayable() {
        let c = ClusterSpec::v100_cluster(2);
        let a = ClusterEventTrace::generate(7, 50, &c, 10);
        let b = ClusterEventTrace::generate(7, 50, &c, 10);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 50);
        // distinct seed, distinct trace
        let other = ClusterEventTrace::generate(8, 50, &c, 10);
        assert_ne!(a, other);
        // every generated event applies cleanly in sequence
        let final_state = a.final_state(&c).expect("trace replays");
        assert!(final_state.healthy_devices() > 0);
        // and time is non-decreasing
        for w in a.events().windows(2) {
            assert!(w[0].at_iter <= w[1].at_iter);
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_trace() {
        let c = ClusterSpec::v100_cluster(2);
        let t = ClusterEventTrace::generate(42, 20, &c, 5);
        let parsed = ClusterEventTrace::from_json(&t.to_json()).expect("roundtrip");
        assert_eq!(t, parsed);
    }

    #[test]
    fn hand_written_document_parses() {
        let doc = r#"{
            "version": 1,
            "seed": 9,
            "events": [
                {"at": 10, "kind": "leave", "node": 0, "local": 3},
                {"at": 25, "kind": "degrade", "node": 1, "local": 0, "factor": 0.5},
                {"at": 40, "kind": "recover", "node": 0, "local": 3},
                {"at": 90, "kind": "join"}
            ]
        }"#;
        let t = ClusterEventTrace::from_json(doc).expect("parses");
        assert_eq!(t.seed(), 9);
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.events()[0].event.kind(), "leave");
        assert_eq!(t.events()[3].event, ClusterEvent::Join);
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        assert!(matches!(
            ClusterEventTrace::from_json("{"),
            Err(TraceError::Parse(_))
        ));
        assert!(matches!(
            ClusterEventTrace::from_json("[1, 2]"),
            Err(TraceError::Schema(_))
        ));
        assert!(matches!(
            ClusterEventTrace::from_json(r#"{"version": 2, "events": []}"#),
            Err(TraceError::Schema(_))
        ));
        assert!(matches!(
            ClusterEventTrace::from_json(
                r#"{"version": 1, "events": [{"at": 1, "kind": "warp"}]}"#
            ),
            Err(TraceError::Schema(_))
        ));
        assert!(matches!(
            ClusterEventTrace::from_json(
                r#"{"version": 1, "events": [{"at": 5, "kind": "leave", "node": 0, "local": 1},
                                            {"at": 2, "kind": "join"}]}"#
            ),
            Err(TraceError::Schema(_))
        ));
    }

    #[test]
    fn load_of_non_utf8_file_is_a_typed_error() {
        let dir = std::env::temp_dir().join("rannc-churn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, [0xffu8, 0xfe, 0x00, 0x80]).unwrap();
        assert!(matches!(
            ClusterEventTrace::load(&path),
            Err(TraceError::Parse(_))
        ));
        assert!(matches!(
            ClusterEventTrace::load(dir.join("missing.json")),
            Err(TraceError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
