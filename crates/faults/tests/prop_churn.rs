//! Property tests of the cluster-event stream.
//!
//! Replanning is only debuggable if churn is *reproducible*: a trace is
//! a pure function of its seed, every generated event is valid against
//! the cluster state at its position in the stream, and the JSON spec
//! format round-trips losslessly.

use proptest::prelude::*;
use rannc_faults::ClusterEventTrace;
use rannc_hw::ClusterSpec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same shape → byte-identical trace, different seed →
    /// (almost surely) a different one.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), nodes in 1usize..4, n in 1usize..40) {
        let cluster = ClusterSpec::v100_cluster(nodes);
        let a = ClusterEventTrace::generate(seed, n, &cluster, 100);
        let b = ClusterEventTrace::generate(seed, n, &cluster, 100);
        prop_assert_eq!(a.events(), b.events());
        prop_assert_eq!(a.to_json(), b.to_json());
        let other = ClusterEventTrace::generate(seed ^ 0x9e3779b97f4a7c15, n, &cluster, 100);
        if n >= 4 {
            prop_assert_ne!(a.events(), other.events());
        }
    }

    /// Every generated event is applicable at its position: replaying
    /// the stream never errors and never empties the cluster.
    #[test]
    fn generated_traces_replay_cleanly(seed in any::<u64>(), nodes in 1usize..4, n in 1usize..60) {
        let cluster = ClusterSpec::v100_cluster(nodes);
        let trace = ClusterEventTrace::generate(seed, n, &cluster, 50);
        prop_assert_eq!(trace.events().len(), n);
        let mut state = cluster.clone();
        let mut last_at = 0usize;
        for te in trace.events() {
            prop_assert!(te.at_iter >= last_at, "event times must be non-decreasing");
            last_at = te.at_iter;
            state = te.event.apply(&state).expect("generated event invalid for its state");
            prop_assert!(state.healthy_devices() >= 1);
        }
        // final_state is exactly the fold above
        prop_assert_eq!(trace.final_state(&cluster).unwrap().healthy_devices(),
            state.healthy_devices());
    }

    /// JSON round trip is lossless for arbitrary generated traces.
    #[test]
    fn json_round_trips(seed in any::<u64>(), nodes in 1usize..4, n in 0usize..40) {
        let cluster = ClusterSpec::v100_cluster(nodes);
        let trace = ClusterEventTrace::generate(seed, n, &cluster, 200);
        let parsed = ClusterEventTrace::from_json(&trace.to_json()).expect("own JSON must parse");
        prop_assert_eq!(parsed.seed(), trace.seed());
        prop_assert_eq!(parsed.events(), trace.events());
    }
}
