//! Synthetic classification data with a deterministic teacher.

use rannc_tensor::{ops, Matrix, Rng};

/// A fixed synthetic dataset: features drawn uniformly, labels produced
/// by a random linear teacher (so the task is learnable and loss curves
/// are meaningful).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n × dim` feature matrix.
    pub inputs: Matrix,
    /// `n` integer labels in `[0, classes)`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Generate `n` samples of dimension `dim` over `classes` classes.
    pub fn synthetic(n: usize, dim: usize, classes: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut inputs = Matrix::zeros(n, dim);
        for v in inputs.data.iter_mut() {
            *v = rng.uniform_f32(-1.0, 1.0);
        }
        let teacher = Matrix::uniform(dim, classes, 1.0, seed ^ 0x5eed);
        let scores = ops::matmul(&inputs, &teacher);
        let labels = (0..n)
            .map(|r| {
                let row = scores.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        Dataset {
            inputs,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// A sequence **copy task** for transformer validation: rows come in
    /// runs of `seq_len` (one sequence each); inputs are one-hot token
    /// encodings and the label of position `i` is the token at `i − 1`
    /// (position 0 predicts token 0). A causal-attention model solves
    /// this by attending one step back — a clean learnability check.
    pub fn copy_task(sequences: usize, seq_len: usize, vocab: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let n = sequences * seq_len;
        let mut inputs = Matrix::zeros(n, vocab);
        let mut labels = Vec::with_capacity(n);
        for s in 0..sequences {
            let mut prev = 0usize;
            for i in 0..seq_len {
                let tok = rng.below(vocab);
                *inputs.get_mut(s * seq_len + i, tok) = 1.0;
                labels.push(if i == 0 { tok } else { prev });
                prev = tok;
            }
        }
        Dataset {
            inputs,
            labels,
            classes: vocab,
        }
    }

    /// The `i`-th mini-batch of size `bs`, cycling over the data.
    pub fn batch(&self, i: usize, bs: usize) -> (Matrix, Vec<usize>) {
        let n = self.len();
        let start = (i * bs) % n;
        let end = (start + bs).min(n);
        let mut x = self.inputs.rows_slice(start, end);
        let mut y = self.labels[start..end].to_vec();
        if end - start < bs {
            // wrap around
            let rest = bs - (end - start);
            let x2 = self.inputs.rows_slice(0, rest);
            x.data.extend_from_slice(&x2.data);
            x.rows += rest;
            y.extend_from_slice(&self.labels[0..rest]);
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = Dataset::synthetic(32, 8, 4, 1);
        let b = Dataset::synthetic(32, 8, 4, 1);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_in_range() {
        let d = Dataset::synthetic(100, 8, 5, 2);
        assert!(d.labels.iter().all(|&l| l < 5));
        // all classes should appear for a random teacher
        let distinct: std::collections::HashSet<_> = d.labels.iter().collect();
        assert!(distinct.len() >= 3);
    }

    #[test]
    fn batch_cycles() {
        let d = Dataset::synthetic(10, 4, 3, 3);
        let (x, y) = d.batch(0, 6);
        assert_eq!(x.rows, 6);
        assert_eq!(y.len(), 6);
        let (x2, y2) = d.batch(1, 6); // wraps: rows 6..10 then 0..2
        assert_eq!(x2.rows, 6);
        assert_eq!(y2[4], d.labels[0]);
        assert_eq!(x2.row(4), d.inputs.row(0));
    }
}
