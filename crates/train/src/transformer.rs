//! A numerically-trainable Transformer block for the pipeline trainer.
//!
//! The paper's loss validation (§IV-B) is performed on BERT; to mirror it
//! with real numbers the trainer needs more than MLP layers. This module
//! implements a pre-LN Transformer block — LayerNorm, single-head causal
//! self-attention, and a ReLU FFN, with hand-derived backward passes —
//! that slots into [`crate::layer::Layer`] and therefore into the
//! thread-per-stage pipeline. A micro-batch is one sequence: the block
//! treats its `[seq, hidden]` input's rows as time steps.
//!
//! All gradients are verified against finite differences in the tests.

use rannc_tensor::{ops, Matrix};
use std::collections::HashMap;

/// Trainable layer normalization over the rows of a matrix.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, one per column.
    pub gamma: Vec<f32>,
    /// Shift, one per column.
    pub beta: Vec<f32>,
}

/// What LayerNorm stashes for backward.
#[derive(Debug, Clone)]
pub struct LnCache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Identity-initialized LayerNorm of width `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
        }
    }

    /// Forward: per-row mean/variance normalization, then scale+shift.
    #[allow(clippy::needless_range_loop)] // r indexes x, xhat, y and inv_std
    pub fn forward(&self, x: &Matrix) -> (Matrix, LnCache) {
        let (rows, cols) = (x.rows, x.cols);
        let mut y = Matrix::zeros(rows, cols);
        let mut xhat = Matrix::zeros(rows, cols);
        let mut inv_std = vec![0.0f32; rows];
        for r in 0..rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let istd = 1.0 / (var + 1e-5).sqrt();
            inv_std[r] = istd;
            for c in 0..cols {
                let xh = (x.get(r, c) - mean) * istd;
                *xhat.get_mut(r, c) = xh;
                *y.get_mut(r, c) = self.gamma[c] * xh + self.beta[c];
            }
        }
        (y, LnCache { xhat, inv_std })
    }

    /// Backward: returns `(dx, dgamma, dbeta)`.
    pub fn backward(&self, cache: &LnCache, dy: &Matrix) -> (Matrix, Vec<f32>, Vec<f32>) {
        let (rows, cols) = (dy.rows, dy.cols);
        let mut dx = Matrix::zeros(rows, cols);
        let mut dgamma = vec![0.0f32; cols];
        let mut dbeta = vec![0.0f32; cols];
        let n = cols as f32;
        for r in 0..rows {
            // dxhat = dy * gamma
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for c in 0..cols {
                let d = dy.get(r, c);
                let xh = cache.xhat.get(r, c);
                dgamma[c] += d * xh;
                dbeta[c] += d;
                let dxhat = d * self.gamma[c];
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * xh;
            }
            let istd = cache.inv_std[r];
            for c in 0..cols {
                let dxhat = dy.get(r, c) * self.gamma[c];
                let xh = cache.xhat.get(r, c);
                *dx.get_mut(r, c) = istd * (dxhat - sum_dxhat / n - xh * sum_dxhat_xhat / n);
            }
        }
        (dx, dgamma, dbeta)
    }
}

/// Row-wise softmax.
fn softmax_rows(x: &Matrix) -> Matrix {
    let mut y = Matrix::zeros(x.rows, x.cols);
    for r in 0..x.rows {
        let row = x.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        for c in 0..x.cols {
            *y.get_mut(r, c) = (x.get(r, c) - max).exp() / denom;
        }
    }
    y
}

/// Backward through row-wise softmax: given `p = softmax(s)` and `dp`,
/// `ds_ij = p_ij (dp_ij − Σ_k dp_ik p_ik)`.
fn softmax_rows_backward(p: &Matrix, dp: &Matrix) -> Matrix {
    let mut ds = Matrix::zeros(p.rows, p.cols);
    for r in 0..p.rows {
        let mut dot = 0.0f32;
        for c in 0..p.cols {
            dot += dp.get(r, c) * p.get(r, c);
        }
        for c in 0..p.cols {
            *ds.get_mut(r, c) = p.get(r, c) * (dp.get(r, c) - dot);
        }
    }
    ds
}

/// Per-micro-batch forward stash of the block.
#[derive(Debug, Clone)]
struct BlockCache {
    ln1: LnCache,
    x1: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    p: Matrix,
    ctx: Matrix,
    ln2: LnCache,
    x3: Matrix,
    h_pre: Matrix,
}

/// Accumulated parameter gradients for one micro-batch.
#[derive(Debug, Clone)]
struct BlockGrads {
    dwq: Matrix,
    dwk: Matrix,
    dwv: Matrix,
    dwo: Matrix,
    dw1: Matrix,
    db1: Vec<f32>,
    dw2: Matrix,
    db2: Vec<f32>,
    dg1: Vec<f32>,
    dbeta1: Vec<f32>,
    dg2: Vec<f32>,
    dbeta2: Vec<f32>,
}

/// A pre-LN Transformer block with single-head causal self-attention.
///
/// `y = x2 + FFN(LN2(x2))` where `x2 = x + Attn(LN1(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    hidden: usize,
    ln1: LayerNorm,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    ln2: LayerNorm,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
    cache: HashMap<usize, BlockCache>,
    grads: HashMap<usize, BlockGrads>,
}

impl TransformerBlock {
    /// Xavier-initialized block of width `hidden` with an `ff`-wide FFN.
    pub fn new(hidden: usize, ff: usize, seed: u64) -> Self {
        TransformerBlock {
            hidden,
            ln1: LayerNorm::new(hidden),
            wq: Matrix::xavier(hidden, hidden, seed),
            wk: Matrix::xavier(hidden, hidden, seed ^ 1),
            wv: Matrix::xavier(hidden, hidden, seed ^ 2),
            wo: Matrix::xavier(hidden, hidden, seed ^ 3),
            ln2: LayerNorm::new(hidden),
            w1: Matrix::xavier(hidden, ff, seed ^ 4),
            b1: vec![0.0; ff],
            w2: Matrix::xavier(ff, hidden, seed ^ 5),
            b2: vec![0.0; hidden],
            cache: HashMap::new(),
            grads: HashMap::new(),
        }
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        4 * self.hidden * self.hidden
            + self.w1.len()
            + self.b1.len()
            + self.w2.len()
            + self.b2.len()
            + 2 * (self.ln1.gamma.len() + self.ln1.beta.len())
    }

    /// Forward one sequence (`x` is `[seq, hidden]`, rows are positions).
    pub fn forward(&mut self, mb: usize, x: Matrix) -> Matrix {
        let seq = x.rows;
        let scale = 1.0 / (self.hidden as f32).sqrt();
        let (x1, ln1c) = self.ln1.forward(&x);
        let q = ops::matmul(&x1, &self.wq);
        let k = ops::matmul(&x1, &self.wk);
        let v = ops::matmul(&x1, &self.wv);
        // causal scores
        let mut scores = ops::matmul_nt(&q, &k);
        for r in 0..seq {
            for c in 0..seq {
                let s = scores.get_mut(r, c);
                if c > r {
                    *s = -1e9;
                } else {
                    *s *= scale;
                }
            }
        }
        let p = softmax_rows(&scores);
        let ctx = ops::matmul(&p, &v);
        let attn = ops::matmul(&ctx, &self.wo);
        let mut x2 = x;
        ops::axpy(&mut x2.data, 1.0, &attn.data);
        let (x3, ln2c) = self.ln2.forward(&x2);
        let mut h_pre = ops::matmul(&x3, &self.w1);
        ops::add_bias(&mut h_pre, &self.b1);
        let h = ops::relu(&h_pre);
        let mut f = ops::matmul(&h, &self.w2);
        ops::add_bias(&mut f, &self.b2);
        let mut y = x2.clone();
        ops::axpy(&mut y.data, 1.0, &f.data);
        self.cache.insert(
            mb,
            BlockCache {
                ln1: ln1c,
                x1,
                q,
                k,
                v,
                p,
                ctx,
                ln2: ln2c,
                x3,
                h_pre,
            },
        );
        y
    }

    /// Backward one sequence; stores parameter grads, returns `dx`.
    pub fn backward(&mut self, mb: usize, dy: Matrix) -> Matrix {
        let c = self.cache.remove(&mb).expect("no stashed forward for mb");
        let scale = 1.0 / (self.hidden as f32).sqrt();

        // ---- FFN branch: y = x2 + f, f = relu(x3 w1 + b1) w2 + b2 ----
        let df = &dy;
        let h = ops::relu(&c.h_pre);
        let dw2 = ops::matmul_tn(&h, df);
        let db2 = ops::col_sums(df);
        let dh = ops::matmul_nt(df, &self.w2);
        let dh_pre = ops::relu_backward(&c.h_pre, &dh);
        let dw1 = ops::matmul_tn(&c.x3, &dh_pre);
        let db1 = ops::col_sums(&dh_pre);
        let dx3 = ops::matmul_nt(&dh_pre, &self.w1);
        let (dx2_ln, dg2, dbeta2) = self.ln2.backward(&c.ln2, &dx3);
        // dx2 = dy (residual) + LN2 path
        let mut dx2 = dy.clone();
        ops::axpy(&mut dx2.data, 1.0, &dx2_ln.data);

        // ---- attention branch: x2 = x + attn ----
        let dattn = &dx2;
        let dwo = ops::matmul_tn(&c.ctx, dattn);
        let dctx = ops::matmul_nt(dattn, &self.wo);
        let dp = ops::matmul_nt(&dctx, &c.v);
        let dv = ops::matmul_tn(&c.p, &dctx);
        let mut dscores = softmax_rows_backward(&c.p, &dp);
        let seq = dscores.rows;
        for r in 0..seq {
            for col in 0..seq {
                let s = dscores.get_mut(r, col);
                if col > r {
                    *s = 0.0; // masked positions have zero gradient
                } else {
                    *s *= scale;
                }
            }
        }
        let dq = ops::matmul(&dscores, &c.k);
        let dk = ops::matmul_tn(&dscores, &c.q);
        let dwq = ops::matmul_tn(&c.x1, &dq);
        let dwk = ops::matmul_tn(&c.x1, &dk);
        let dwv = ops::matmul_tn(&c.x1, &dv);
        let mut dx1 = ops::matmul_nt(&dq, &self.wq);
        ops::axpy(&mut dx1.data, 1.0, &ops::matmul_nt(&dk, &self.wk).data);
        ops::axpy(&mut dx1.data, 1.0, &ops::matmul_nt(&dv, &self.wv).data);
        let (dx_ln1, dg1, dbeta1) = self.ln1.backward(&c.ln1, &dx1);
        // dx = dx2 (residual) + LN1 path
        let mut dx = dx2.clone();
        ops::axpy(&mut dx.data, 1.0, &dx_ln1.data);

        self.grads.insert(
            mb,
            BlockGrads {
                dwq,
                dwk,
                dwv,
                dwo,
                dw1,
                db1,
                dw2,
                db2,
                dg1,
                dbeta1,
                dg2,
                dbeta2,
            },
        );
        dx
    }

    /// Sum the recorded micro-batch gradients (ascending mb order) and
    /// apply one optimizer step. `slot_base` reserves 12 optimizer slots.
    pub fn step(&mut self, opt: &mut dyn rannc_tensor::Optimizer, slot_base: usize) {
        if self.grads.is_empty() {
            return;
        }
        let mut keys: Vec<usize> = self.grads.keys().copied().collect();
        keys.sort_unstable();
        let mut acc: Option<BlockGrads> = None;
        for kk in keys {
            let g = self.grads.remove(&kk).unwrap();
            match &mut acc {
                None => acc = Some(g),
                Some(a) => {
                    ops::axpy(&mut a.dwq.data, 1.0, &g.dwq.data);
                    ops::axpy(&mut a.dwk.data, 1.0, &g.dwk.data);
                    ops::axpy(&mut a.dwv.data, 1.0, &g.dwv.data);
                    ops::axpy(&mut a.dwo.data, 1.0, &g.dwo.data);
                    ops::axpy(&mut a.dw1.data, 1.0, &g.dw1.data);
                    ops::axpy(&mut a.db1, 1.0, &g.db1);
                    ops::axpy(&mut a.dw2.data, 1.0, &g.dw2.data);
                    ops::axpy(&mut a.db2, 1.0, &g.db2);
                    ops::axpy(&mut a.dg1, 1.0, &g.dg1);
                    ops::axpy(&mut a.dbeta1, 1.0, &g.dbeta1);
                    ops::axpy(&mut a.dg2, 1.0, &g.dg2);
                    ops::axpy(&mut a.dbeta2, 1.0, &g.dbeta2);
                }
            }
        }
        let a = acc.unwrap();
        self.apply(opt, slot_base, &a);
    }

    /// Apply ONE micro-batch's gradients immediately (async mode).
    pub fn step_immediate(
        &mut self,
        mb: usize,
        opt: &mut dyn rannc_tensor::Optimizer,
        slot_base: usize,
    ) {
        if let Some(g) = self.grads.remove(&mb) {
            self.apply(opt, slot_base, &g);
        }
    }

    fn apply(&mut self, opt: &mut dyn rannc_tensor::Optimizer, base: usize, g: &BlockGrads) {
        opt.step(base, &mut self.wq.data, &g.dwq.data);
        opt.step(base + 1, &mut self.wk.data, &g.dwk.data);
        opt.step(base + 2, &mut self.wv.data, &g.dwv.data);
        opt.step(base + 3, &mut self.wo.data, &g.dwo.data);
        opt.step(base + 4, &mut self.w1.data, &g.dw1.data);
        opt.step(base + 5, &mut self.b1, &g.db1);
        opt.step(base + 6, &mut self.w2.data, &g.dw2.data);
        opt.step(base + 7, &mut self.b2, &g.db2);
        opt.step(base + 8, &mut self.ln1.gamma, &g.dg1);
        opt.step(base + 9, &mut self.ln1.beta, &g.dbeta1);
        opt.step(base + 10, &mut self.ln2.gamma, &g.dg2);
        opt.step(base + 11, &mut self.ln2.beta, &g.dbeta2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically check dLoss/dX and a sample of parameter gradients for
    /// loss = sum(y) on a tiny block.
    #[test]
    fn finite_difference_gradients() {
        let (seq, h, ff) = (3usize, 4usize, 8usize);
        let mut block = TransformerBlock::new(h, ff, 42);
        let x = Matrix::uniform(seq, h, 0.5, 7);

        // analytic
        let y = block.forward(0, x.clone());
        let dy = Matrix::from_vec(seq, h, vec![1.0; seq * h]);
        let dx = block.backward(0, dy);
        let grads = block.grads.remove(&0).unwrap();

        let loss = |blk: &mut TransformerBlock, x: &Matrix| -> f32 {
            let y = blk.forward(99, x.clone());
            blk.cache.remove(&99);
            y.data.iter().sum()
        };
        let eps = 1e-2f32;

        // input gradient
        for i in [0usize, 3, 7, seq * h - 1] {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let num = (loss(&mut block, &xp) - loss(&mut block, &xm)) / (2.0 * eps);
            let ana = dx.data[i];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dx[{i}]: numeric {num} vs analytic {ana}"
            );
        }

        // parameter gradients: check one entry of each matrix family
        macro_rules! check_param {
            ($field:ident, $grad:expr, $idx:expr) => {{
                let idx = $idx;
                let orig = block.$field.data[idx];
                block.$field.data[idx] = orig + eps;
                let lp = loss(&mut block, &x);
                block.$field.data[idx] = orig - eps;
                let lm = loss(&mut block, &x);
                block.$field.data[idx] = orig;
                let num = (lp - lm) / (2.0 * eps);
                let ana = $grad.data[idx];
                assert!(
                    (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                    "{}[{idx}]: numeric {num} vs analytic {ana}",
                    stringify!($field)
                );
            }};
        }
        check_param!(wq, grads.dwq, 5);
        check_param!(wk, grads.dwk, 2);
        check_param!(wv, grads.dwv, 9);
        check_param!(wo, grads.dwo, 1);
        check_param!(w1, grads.dw1, 11);
        check_param!(w2, grads.dw2, 3);

        // LayerNorm gamma via the vec path
        let orig = block.ln1.gamma[1];
        block.ln1.gamma[1] = orig + eps;
        let lp = loss(&mut block, &x);
        block.ln1.gamma[1] = orig - eps;
        let lm = loss(&mut block, &x);
        block.ln1.gamma[1] = orig;
        let num = (lp - lm) / (2.0 * eps);
        let ana = grads.dg1[1];
        assert!(
            (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
            "dgamma1: numeric {num} vs analytic {ana}"
        );
        let _ = y;
    }

    #[test]
    fn causal_mask_blocks_future_positions() {
        // Changing a future token must not change earlier outputs.
        let (seq, h) = (4usize, 4usize);
        let mut block = TransformerBlock::new(h, 8, 3);
        let x = Matrix::uniform(seq, h, 0.5, 11);
        let y1 = block.forward(0, x.clone());
        block.cache.remove(&0);
        let mut x2 = x.clone();
        // perturb the LAST row only
        for c in 0..h {
            *x2.get_mut(seq - 1, c) += 0.3;
        }
        let y2 = block.forward(1, x2);
        block.cache.remove(&1);
        for r in 0..seq - 1 {
            for c in 0..h {
                assert!(
                    (y1.get(r, c) - y2.get(r, c)).abs() < 1e-6,
                    "future leaked into position {r}"
                );
            }
        }
        // the last row must have changed
        assert!(y1.row(seq - 1) != y2.row(seq - 1));
    }

    #[test]
    fn layernorm_normalizes() {
        let ln = LayerNorm::new(8);
        let x = Matrix::uniform(4, 8, 3.0, 5);
        let (y, _) = ln.forward(&x);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_gradient_numeric() {
        let ln = LayerNorm::new(4);
        let x = Matrix::uniform(2, 4, 0.7, 9);
        let (_, cache) = ln.forward(&x);
        let dy = Matrix::from_vec(2, 4, vec![0.3, -0.2, 0.5, 0.1, -0.4, 0.2, 0.0, 0.6]);
        let (dx, _, _) = ln.backward(&cache, &dy);
        let eps = 1e-3f32;
        let loss = |x: &Matrix| -> f32 {
            let (y, _) = ln.forward(x);
            y.data.iter().zip(&dy.data).map(|(a, b)| a * b).sum()
        };
        for i in 0..8 {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 1e-2,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn step_clears_grads() {
        let mut block = TransformerBlock::new(4, 8, 1);
        let x = Matrix::uniform(3, 4, 0.5, 2);
        let y = block.forward(0, x);
        let _ = block.backward(0, Matrix::from_vec(3, 4, vec![1.0; 12]));
        let mut opt = rannc_tensor::Adam::new(0.01);
        block.step(&mut opt, 0);
        assert!(block.grads.is_empty());
        assert!(block.cache.is_empty());
        let _ = y;
    }
}
