//! The loss-validation experiment (paper §IV-B).
//!
//! The paper validates RaNNC by pre-training BERT models with both RaNNC
//! and Megatron-LM and confirming "almost the same loss value … the
//! difference in loss values was less than 1.0 × 10⁻³". The analogous —
//! and stronger — claim provable on our numeric substrate: training a
//! partitioned model under the synchronous pipeline gives exactly the
//! losses of unpartitioned training, while an asynchronous pipeline
//! (parameter staleness) drifts away.

use crate::data::Dataset;
use crate::pipeline::{train_pipeline, train_single, Mode, TrainConfig};
use crate::stage::{build_mlp, split_into_stages, Stage};

/// Loss trajectories of the three training regimes.
#[derive(Debug, Clone)]
pub struct LossValidation {
    /// Single-device reference (gradient accumulation).
    pub reference: Vec<f32>,
    /// Synchronous pipeline (RaNNC-style).
    pub synchronous: Vec<f32>,
    /// Asynchronous pipeline (staleness-inducing).
    pub asynchronous: Vec<f32>,
}

impl LossValidation {
    /// Maximum |sync − reference| over the trajectory.
    pub fn sync_divergence(&self) -> f32 {
        max_abs_diff(&self.synchronous, &self.reference)
    }

    /// Maximum |async − reference| over the trajectory.
    pub fn async_divergence(&self) -> f32 {
        max_abs_diff(&self.asynchronous, &self.reference)
    }

    /// Final losses `(reference, sync, async)`.
    pub fn final_losses(&self) -> (f32, f32, f32) {
        (
            *self.reference.last().unwrap(),
            *self.synchronous.last().unwrap(),
            *self.asynchronous.last().unwrap(),
        )
    }
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Run the experiment: an MLP of shape `dims`, split into `stages`
/// pipeline stages, trained `iterations` iterations on synthetic data.
pub fn loss_validation(
    dims: &[usize],
    stages: usize,
    iterations: usize,
    seed: u64,
) -> LossValidation {
    let classes = *dims.last().expect("dims non-empty");
    let data = Dataset::synthetic(256, dims[0], classes, seed);
    let cfg = TrainConfig {
        iterations,
        batch_size: 32,
        microbatches: 8,
    };
    let lr = 0.01;

    let mut single = Stage::new(build_mlp(dims, seed ^ 0xabc), lr);
    let reference = train_single(&mut single, &data, &cfg, Mode::Synchronous);

    let sync_stages = split_into_stages(build_mlp(dims, seed ^ 0xabc), stages, lr);
    let (synchronous, _) =
        train_pipeline(sync_stages, &data, &cfg, Mode::Synchronous).expect("sync pipeline");

    let async_stages = split_into_stages(build_mlp(dims, seed ^ 0xabc), stages, lr);
    let (asynchronous, _) =
        train_pipeline(async_stages, &data, &cfg, Mode::Asynchronous).expect("async pipeline");

    LossValidation {
        reference,
        synchronous,
        asynchronous,
    }
}

/// The transformer variant of the experiment, mirroring the paper's BERT
/// validation more closely: a causal-attention model on a sequence copy
/// task, one sequence per micro-batch, split into `stages` pipeline
/// stages.
pub fn loss_validation_transformer(
    vocab: usize,
    hidden: usize,
    blocks: usize,
    stages: usize,
    iterations: usize,
    seed: u64,
) -> LossValidation {
    let seq_len = 8usize;
    let micro_per_batch = 4usize; // sequences per mini-batch
    let data = Dataset::copy_task(64, seq_len, vocab, seed);
    let cfg = TrainConfig {
        iterations,
        batch_size: micro_per_batch * seq_len,
        microbatches: micro_per_batch, // micro-batch = one sequence
    };
    let lr = 0.01;
    let build = || {
        let mut layers = vec![crate::layer::Layer::linear(vocab, hidden, seed ^ 0x7a)];
        for i in 0..blocks {
            layers.push(crate::layer::Layer::transformer(
                hidden,
                2 * hidden,
                seed ^ (0x100 + i as u64),
            ));
        }
        layers.push(crate::layer::Layer::linear(hidden, vocab, seed ^ 0x7b));
        layers
    };

    let mut single = Stage::new(build(), lr);
    let reference = train_single(&mut single, &data, &cfg, Mode::Synchronous);

    let (synchronous, _) = train_pipeline(
        split_into_stages(build(), stages, lr),
        &data,
        &cfg,
        Mode::Synchronous,
    )
    .expect("sync pipeline");
    let (asynchronous, _) = train_pipeline(
        split_into_stages(build(), stages, lr),
        &data,
        &cfg,
        Mode::Asynchronous,
    )
    .expect("async pipeline");

    LossValidation {
        reference,
        synchronous,
        asynchronous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claim_holds() {
        let v = loss_validation(&[16, 64, 64, 64, 8], 4, 30, 42);
        // the paper's threshold: loss difference < 1e-3; ours is exact
        assert!(
            v.sync_divergence() < 1e-3,
            "sync divergence {}",
            v.sync_divergence()
        );
        assert_eq!(v.sync_divergence(), 0.0, "sync should be bit-identical");
        assert!(
            v.async_divergence() > v.sync_divergence(),
            "async ({}) should drift more than sync ({})",
            v.async_divergence(),
            v.sync_divergence()
        );
    }

    #[test]
    fn transformer_paper_claim_holds() {
        // the BERT-analogue: a causal transformer trained as a pipeline
        let v = loss_validation_transformer(8, 16, 2, 2, 25, 77);
        assert_eq!(
            v.sync_divergence(),
            0.0,
            "transformer sync pipeline must be bit-identical"
        );
        assert!(v.async_divergence() > 0.0);
    }

    #[test]
    fn transformer_learns_the_copy_task() {
        let v = loss_validation_transformer(8, 32, 2, 2, 120, 5);
        let head = v.reference[0];
        let tail = *v.reference.last().unwrap();
        assert!(tail < head * 0.5, "copy task not learned: {head} -> {tail}");
        // sync pipeline identical all the way through training
        assert_eq!(v.sync_divergence(), 0.0);
    }

    #[test]
    fn all_regimes_learn() {
        let v = loss_validation(&[16, 32, 32, 8], 2, 60, 7);
        for (name, losses) in [
            ("reference", &v.reference),
            ("sync", &v.synchronous),
            ("async", &v.asynchronous),
        ] {
            let head = losses[0];
            let tail = *losses.last().unwrap();
            assert!(tail < head, "{name} did not learn: {head} -> {tail}");
        }
    }
}
