//! A bounded MPSC channel with send/recv timeouts and disconnect
//! detection, built on `std::sync::{Mutex, Condvar}`.
//!
//! The trainer needs exactly three properties from its channels, all in
//! service of fault tolerance:
//!
//! 1. **bounded capacity** — a dead consumer backpressures its producer
//!    instead of letting queues grow without limit;
//! 2. **timeouts on both ends** — a stage blocked on a dead neighbour
//!    wakes up and unwinds instead of deadlocking the scope;
//! 3. **disconnect signalling** — dropping either end wakes the other
//!    immediately, so failure cascades through the pipeline fast.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a send did not complete.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<T> {
    /// The receiver was dropped; the value is returned.
    Disconnected(T),
    /// The queue stayed full past the deadline; the value is returned.
    Timeout(T),
}

/// Why a receive did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// All senders dropped and the queue is drained.
    Disconnected,
    /// Nothing arrived before the deadline.
    Timeout,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Inner<T> {
    cap: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Producing end; clonable (MPSC).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Consuming end; single owner.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create a bounded channel with capacity `cap` (>= 1).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "channel capacity must be >= 1");
    let inner = Arc::new(Inner {
        cap,
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Block until the value is queued or `timeout` elapses.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if !state.receiver_alive {
                return Err(SendError::Disconnected(value));
            }
            if state.queue.len() < self.inner.cap {
                state.queue.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendError::Timeout(value));
            }
            let (guard, _res) = self
                .inner
                .not_full
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            // wake a receiver blocked on an empty queue so it observes
            // the disconnect
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Timeout);
            }
            let (guard, _res) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
        }
    }

    /// Drain whatever is queued without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.inner.state.lock().unwrap();
        let out = state.queue.drain(..).collect();
        self.inner.not_full.notify_all();
        out
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.receiver_alive = false;
        // wake all senders blocked on a full queue so they observe the
        // disconnect
        self.inner.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send_timeout(i, Duration::from_secs(1)).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(i));
        }
    }

    #[test]
    fn send_times_out_when_full() {
        let (tx, _rx) = bounded(1);
        tx.send_timeout(1, Duration::from_millis(10)).unwrap();
        match tx.send_timeout(2, Duration::from_millis(10)) {
            Err(SendError::Timeout(2)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn recv_times_out_when_empty() {
        let (_tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvError::Timeout)
        );
    }

    #[test]
    fn dropping_senders_disconnects_after_drain() {
        let (tx, rx) = bounded(2);
        tx.send_timeout(7, Duration::from_secs(1)).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)),
            Err(RecvError::Disconnected)
        );
    }

    #[test]
    fn dropping_receiver_fails_sends() {
        let (tx, rx) = bounded(1);
        drop(rx);
        match tx.send_timeout(1, Duration::from_secs(1)) {
            Err(SendError::Disconnected(1)) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn dropping_receiver_wakes_blocked_sender() {
        let (tx, rx) = bounded(1);
        tx.send_timeout(0, Duration::from_secs(1)).unwrap();
        let h = std::thread::spawn(move || tx.send_timeout(1, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        drop(rx);
        match h.join().unwrap() {
            Err(SendError::Disconnected(1)) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let (tx, rx) = bounded(2);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send_timeout(i, Duration::from_secs(5)).unwrap();
            }
        });
        for i in 0..100 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(i));
        }
        h.join().unwrap();
    }
}
