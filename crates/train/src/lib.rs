//! # rannc-train
//!
//! A real (numeric) pipeline-parallel trainer on OS threads, used to
//! verify the paper's central correctness claim with actual numbers:
//!
//! > synchronous pipeline parallelism is **parameter-staleness-free** —
//! > training a partitioned model gives the same result as training it on
//! > one device (§II-B, §IV-B's loss-validation against Megatron-LM).
//!
//! [`validate::loss_validation`] trains the same MLP three ways on the
//! same data: single-device with gradient accumulation (reference),
//! a threaded **synchronous** micro-batch pipeline (bit-identical losses
//! to the reference, by construction of the reduction order), and an
//! **asynchronous** pipeline that applies updates between a micro-batch's
//! forward and backward (PipeDream-style staleness — the losses drift).

pub mod channel;
pub mod data;
pub mod error;
pub mod ft;
pub mod layer;
pub mod pipeline;
pub mod stage;
pub mod transformer;
pub mod validate;

pub use data::Dataset;
pub use error::TrainError;
pub use ft::{train_with_faults, Checkpoint, FtConfig, FtReport, RecoveryRecord};
pub use layer::Layer;
pub use pipeline::{train_pipeline, Mode, TrainConfig};
pub use stage::{build_mlp, restage, split_into_stages, Stage};
pub use transformer::{LayerNorm, TransformerBlock};
pub use validate::{loss_validation, loss_validation_transformer, LossValidation};
