//! A pipeline stage: an ordered stack of layers with a local optimizer.

use crate::layer::Layer;
use rannc_tensor::{Adam, Matrix};

/// One pipeline stage owning a slice of the model and its optimizer.
///
/// Each stage keeps its own Adam instance (slot-indexed per layer), just
/// as every RaNNC subcomponent runs its own optimizer locally — parameter
/// updates never cross stage boundaries.
#[derive(Debug, Clone)]
pub struct Stage {
    layers: Vec<Layer>,
    opt: Adam,
}

impl Stage {
    /// Create a stage from layers with an Adam learning rate.
    pub fn new(layers: Vec<Layer>, lr: f32) -> Self {
        Stage {
            layers,
            opt: Adam::new(lr),
        }
    }

    /// Forward one micro-batch through all layers.
    pub fn forward(&mut self, mb: usize, mut x: Matrix) -> Matrix {
        for l in &mut self.layers {
            x = l.forward(mb, x);
        }
        x
    }

    /// Backward one micro-batch through all layers (reverse order).
    pub fn backward(&mut self, mb: usize, mut dy: Matrix) -> Matrix {
        for l in self.layers.iter_mut().rev() {
            dy = l.backward(mb, dy);
        }
        dy
    }

    /// Synchronous update: sum all micro-batch gradients (ascending
    /// micro-batch order) and step once.
    pub fn step(&mut self) {
        for (i, l) in self.layers.iter_mut().enumerate() {
            l.step(&mut self.opt, i);
        }
    }

    /// Asynchronous update: apply this micro-batch's gradients
    /// immediately (induces parameter staleness).
    pub fn step_immediate(&mut self, mb: usize) {
        for (i, l) in self.layers.iter_mut().enumerate() {
            l.step_immediate(mb, &mut self.opt, i);
        }
    }

    /// Trainable parameters in this stage.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Immutable view of the layers (for tests).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }
}

/// Build a deep MLP as a flat layer list: `dims[0] -> dims[1] -> …`,
/// ReLU between layers, no activation after the last.
pub fn build_mlp(dims: &[usize], seed: u64) -> Vec<Layer> {
    assert!(dims.len() >= 2);
    let mut layers = Vec::new();
    for i in 0..dims.len() - 1 {
        layers.push(Layer::linear(
            dims[i],
            dims[i + 1],
            seed.wrapping_add(i as u64),
        ));
        if i + 2 < dims.len() {
            layers.push(Layer::relu());
        }
    }
    layers
}

/// Split a flat layer list into `n` stages of (as equal as possible)
/// consecutive layers.
pub fn split_into_stages(layers: Vec<Layer>, n: usize, lr: f32) -> Vec<Stage> {
    assert!(n >= 1 && n <= layers.len());
    let total = layers.len();
    let per = total / n;
    let rem = total % n;
    let mut stages = Vec::with_capacity(n);
    let mut iter = layers.into_iter();
    for s in 0..n {
        let take = per + usize::from(s < rem);
        let chunk: Vec<Layer> = iter.by_ref().take(take).collect();
        stages.push(Stage::new(chunk, lr));
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_structure() {
        let layers = build_mlp(&[8, 16, 16, 4], 1);
        // 3 linears + 2 relus
        assert_eq!(layers.len(), 5);
        let total: usize = layers.iter().map(Layer::param_count).sum();
        assert_eq!(total, 8 * 16 + 16 + 16 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    fn split_preserves_all_layers() {
        let layers = build_mlp(&[8, 16, 16, 16, 4], 1);
        let n_layers = layers.len();
        let total: usize = layers.iter().map(Layer::param_count).sum();
        let stages = split_into_stages(layers, 3, 0.01);
        assert_eq!(stages.len(), 3);
        assert_eq!(
            stages.iter().map(|s| s.layers().len()).sum::<usize>(),
            n_layers
        );
        assert_eq!(stages.iter().map(Stage::param_count).sum::<usize>(), total);
    }

    #[test]
    fn stage_forward_backward_roundtrip() {
        let mut st = Stage::new(build_mlp(&[4, 8, 2], 3), 0.01);
        let x = Matrix::from_vec(2, 4, vec![0.1; 8]);
        let y = st.forward(0, x);
        assert_eq!((y.rows, y.cols), (2, 2));
        let dx = st.backward(0, Matrix::from_vec(2, 2, vec![1.0; 4]));
        assert_eq!((dx.rows, dx.cols), (2, 4));
        st.step();
    }
}
