//! A pipeline stage: an ordered stack of layers with a local optimizer.

use crate::layer::Layer;
use rannc_tensor::{Adam, AdamSlotState, Matrix};

/// One pipeline stage owning a slice of the model and its optimizer.
///
/// Each stage keeps its own Adam instance (slot-indexed per layer), just
/// as every RaNNC subcomponent runs its own optimizer locally — parameter
/// updates never cross stage boundaries.
#[derive(Debug, Clone)]
pub struct Stage {
    layers: Vec<Layer>,
    opt: Adam,
}

impl Stage {
    /// Create a stage from layers with an Adam learning rate.
    pub fn new(layers: Vec<Layer>, lr: f32) -> Self {
        Stage {
            layers,
            opt: Adam::new(lr),
        }
    }

    /// Forward one micro-batch through all layers.
    pub fn forward(&mut self, mb: usize, mut x: Matrix) -> Matrix {
        for l in &mut self.layers {
            x = l.forward(mb, x);
        }
        x
    }

    /// Backward one micro-batch through all layers (reverse order).
    pub fn backward(&mut self, mb: usize, mut dy: Matrix) -> Matrix {
        for l in self.layers.iter_mut().rev() {
            dy = l.backward(mb, dy);
        }
        dy
    }

    /// Synchronous update: sum all micro-batch gradients (ascending
    /// micro-batch order) and step once.
    pub fn step(&mut self) {
        for (i, l) in self.layers.iter_mut().enumerate() {
            l.step(&mut self.opt, i);
        }
    }

    /// Asynchronous update: apply this micro-batch's gradients
    /// immediately (induces parameter staleness).
    pub fn step_immediate(&mut self, mb: usize) {
        for (i, l) in self.layers.iter_mut().enumerate() {
            l.step_immediate(mb, &mut self.opt, i);
        }
    }

    /// Trainable parameters in this stage.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Immutable view of the layers (for tests).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }
}

/// Build a deep MLP as a flat layer list: `dims[0] -> dims[1] -> …`,
/// ReLU between layers, no activation after the last.
pub fn build_mlp(dims: &[usize], seed: u64) -> Vec<Layer> {
    assert!(dims.len() >= 2);
    let mut layers = Vec::new();
    for i in 0..dims.len() - 1 {
        layers.push(Layer::linear(
            dims[i],
            dims[i + 1],
            seed.wrapping_add(i as u64),
        ));
        if i + 2 < dims.len() {
            layers.push(Layer::relu());
        }
    }
    layers
}

/// Re-split trained stages into a different stage count, migrating both
/// the layers and their per-layer Adam moments — the trainer-level
/// analogue of the planner's post-replan parameter migration. The
/// continued run is bit-identical to one that never changed its split:
/// synchronous pipeline math is invariant to stage boundaries, and the
/// optimizer state travels with each layer.
pub fn restage(stages: Vec<Stage>, n: usize, lr: f32) -> Vec<Stage> {
    // each layer owns the optimizer-slot range
    // [i * SLOT_STRIDE, (i + 1) * SLOT_STRIDE) within its stage; detach
    // every slot of that range alongside the layer itself
    let mut layers: Vec<Layer> = Vec::new();
    let mut moments: Vec<Vec<Option<AdamSlotState>>> = Vec::new();
    for mut stage in stages {
        for (i, layer) in stage.layers.drain(..).enumerate() {
            let base = Layer::SLOT_STRIDE * i;
            moments.push(
                (0..Layer::SLOT_STRIDE)
                    .map(|k| stage.opt.take_slot(base + k))
                    .collect(),
            );
            layers.push(layer);
        }
    }
    let mut out = split_into_stages(layers, n, lr);
    let mut moments = moments.into_iter();
    for stage in &mut out {
        for i in 0..stage.layers.len() {
            let base = Layer::SLOT_STRIDE * i;
            let states = moments.next().expect("one moment range per layer");
            for (k, state) in states.into_iter().enumerate() {
                if let Some(state) = state {
                    stage.opt.restore_slot(base + k, state);
                }
            }
        }
    }
    out
}

/// Split a flat layer list into `n` stages of (as equal as possible)
/// consecutive layers.
pub fn split_into_stages(layers: Vec<Layer>, n: usize, lr: f32) -> Vec<Stage> {
    assert!(n >= 1 && n <= layers.len());
    let total = layers.len();
    let per = total / n;
    let rem = total % n;
    let mut stages = Vec::with_capacity(n);
    let mut iter = layers.into_iter();
    for s in 0..n {
        let take = per + usize::from(s < rem);
        let chunk: Vec<Layer> = iter.by_ref().take(take).collect();
        stages.push(Stage::new(chunk, lr));
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_structure() {
        let layers = build_mlp(&[8, 16, 16, 4], 1);
        // 3 linears + 2 relus
        assert_eq!(layers.len(), 5);
        let total: usize = layers.iter().map(Layer::param_count).sum();
        assert_eq!(total, 8 * 16 + 16 + 16 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    fn split_preserves_all_layers() {
        let layers = build_mlp(&[8, 16, 16, 16, 4], 1);
        let n_layers = layers.len();
        let total: usize = layers.iter().map(Layer::param_count).sum();
        let stages = split_into_stages(layers, 3, 0.01);
        assert_eq!(stages.len(), 3);
        assert_eq!(
            stages.iter().map(|s| s.layers().len()).sum::<usize>(),
            n_layers
        );
        assert_eq!(stages.iter().map(Stage::param_count).sum::<usize>(), total);
    }

    #[test]
    fn restage_preserves_layers_and_params() {
        let layers = build_mlp(&[8, 16, 16, 16, 4], 1);
        let n_layers = layers.len();
        let total: usize = layers.iter().map(Layer::param_count).sum();
        let stages = split_into_stages(layers, 4, 0.01);
        let restaged = restage(stages, 2, 0.01);
        assert_eq!(restaged.len(), 2);
        assert_eq!(
            restaged.iter().map(|s| s.layers().len()).sum::<usize>(),
            n_layers
        );
        assert_eq!(
            restaged.iter().map(Stage::param_count).sum::<usize>(),
            total
        );
    }

    #[test]
    fn restage_mid_run_continues_bit_identically() {
        // train 10 iterations on 3 stages, re-split to 2 stages (layers +
        // Adam moments migrate), train 10 more — the loss trajectory and
        // final weights must be bit-identical to a run that never
        // changed its split
        use crate::data::Dataset;
        use crate::pipeline::{run_segment, Mode, TrainConfig};
        use std::time::Duration;

        let data = Dataset::synthetic(64, 8, 4, 11);
        let cfg = TrainConfig {
            iterations: 20,
            batch_size: 16,
            microbatches: 4,
        };
        let timeout = Duration::from_secs(10);
        let fresh = || split_into_stages(build_mlp(&[8, 32, 32, 32, 4], 5), 3, 0.01);

        let (ref_losses, ref_stages) =
            run_segment(fresh(), &data, &cfg, Mode::Synchronous, 0..20, &[], timeout).unwrap();

        let (mut losses, trained) =
            run_segment(fresh(), &data, &cfg, Mode::Synchronous, 0..10, &[], timeout).unwrap();
        let restaged = restage(trained, 2, 0.01);
        let (tail, final_stages) = run_segment(
            restaged,
            &data,
            &cfg,
            Mode::Synchronous,
            10..20,
            &[],
            timeout,
        )
        .unwrap();
        losses.extend(tail);

        assert_eq!(losses, ref_losses, "losses diverged across the re-split");
        let flat = |stages: &[Stage]| -> Vec<Vec<f32>> {
            stages
                .iter()
                .flat_map(|s| s.layers().iter())
                .filter_map(|l| match l {
                    Layer::Linear { w, .. } => Some(w.data.clone()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(
            flat(&final_stages),
            flat(&ref_stages),
            "weights diverged across the re-split"
        );
    }

    #[test]
    fn stage_forward_backward_roundtrip() {
        let mut st = Stage::new(build_mlp(&[4, 8, 2], 3), 0.01);
        let x = Matrix::from_vec(2, 4, vec![0.1; 8]);
        let y = st.forward(0, x);
        assert_eq!((y.rows, y.cols), (2, 2));
        let dx = st.backward(0, Matrix::from_vec(2, 2, vec![1.0; 4]));
        assert_eq!((dx.rows, dx.cols), (2, 4));
        st.step();
    }
}
