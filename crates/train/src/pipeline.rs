//! The threaded pipeline-parallel trainer.
//!
//! Each stage runs on its own OS thread; activations and gradients travel
//! through crossbeam channels, exactly mirroring Fig. 1 of the paper:
//! micro-batches flow forward through the stages, then their gradients
//! flow back, then (synchronous mode) every stage applies one optimizer
//! step — so the parameters every micro-batch saw are identical and the
//! run is **bit-equivalent** to single-device training with gradient
//! accumulation.
//!
//! Asynchronous mode applies each micro-batch's gradient the moment its
//! backward completes, so micro-batches that were forwarded earlier are
//! backpropagated against *newer* weights — PipeDream-style parameter
//! staleness, without weight stashing.

use crate::data::Dataset;
use crate::stage::Stage;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rannc_tensor::{ops, Matrix};

/// Update discipline of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Staleness-free: accumulate gradients, step after the full
    /// mini-batch (what RaNNC/GPipe do).
    Synchronous,
    /// Apply each micro-batch's gradients immediately (what asynchronous
    /// pipelines risk).
    Asynchronous,
}

/// Training-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Training iterations (mini-batches).
    pub iterations: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Micro-batches per mini-batch (must divide `batch_size`).
    pub microbatches: usize,
}

enum Msg {
    Fwd(usize, Matrix),
    Bwd(usize, Matrix),
}

/// Train `stages` as a thread-per-stage pipeline over `data`.
///
/// Returns the per-iteration mean losses and the trained stages (so
/// callers can inspect final weights).
pub fn train_pipeline(
    mut stages: Vec<Stage>,
    data: &Dataset,
    cfg: &TrainConfig,
    mode: Mode,
) -> (Vec<f32>, Vec<Stage>) {
    assert!(cfg.batch_size.is_multiple_of(cfg.microbatches));
    let n_stages = stages.len();
    assert!(n_stages >= 1);
    if n_stages == 1 {
        // degenerate pipeline: just run locally
        let losses = train_single(&mut stages[0], data, cfg, mode);
        return (losses, stages);
    }
    let micro = cfg.batch_size / cfg.microbatches;

    // channels: fwd[s] feeds stage s; bwd[s] feeds stage s (from s+1)
    let mut fwd_tx: Vec<Sender<Msg>> = Vec::new();
    let mut fwd_rx: Vec<Receiver<Msg>> = Vec::new();
    let mut bwd_tx: Vec<Sender<Msg>> = Vec::new();
    let mut bwd_rx: Vec<Receiver<Msg>> = Vec::new();
    for _ in 0..n_stages {
        let (t, r) = unbounded();
        fwd_tx.push(t);
        fwd_rx.push(r);
        let (t, r) = unbounded();
        bwd_tx.push(t);
        bwd_rx.push(r);
    }
    let (loss_tx, loss_rx) = unbounded::<f32>();

    // labels for the last stage, precomputed per iteration/micro-batch
    let mut labels_per_iter: Vec<Vec<Vec<usize>>> = Vec::with_capacity(cfg.iterations);
    let mut inputs_per_iter: Vec<Vec<Matrix>> = Vec::with_capacity(cfg.iterations);
    for it in 0..cfg.iterations {
        let (x, y) = data.batch(it, cfg.batch_size);
        let mut xs = Vec::with_capacity(cfg.microbatches);
        let mut ys = Vec::with_capacity(cfg.microbatches);
        for m in 0..cfg.microbatches {
            xs.push(x.rows_slice(m * micro, (m + 1) * micro));
            ys.push(y[m * micro..(m + 1) * micro].to_vec());
        }
        inputs_per_iter.push(xs);
        labels_per_iter.push(ys);
    }

    let trained: Vec<Stage> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_stages);
        for (s, mut stage) in stages.into_iter().enumerate() {
            let my_fwd = fwd_rx[s].clone();
            let my_bwd = bwd_rx[s].clone();
            let next_fwd = (s + 1 < n_stages).then(|| fwd_tx[s + 1].clone());
            let prev_bwd = (s > 0).then(|| bwd_tx[s - 1].clone());
            let loss_tx = loss_tx.clone();
            let labels = labels_per_iter.clone();
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                #[allow(clippy::needless_range_loop)] // `it` also tags iterations conceptually
                for it in 0..cfg.iterations {
                    // ---- forward phase ----
                    for m in 0..cfg.microbatches {
                        let Msg::Fwd(mb, x) = my_fwd.recv().expect("fwd channel") else {
                            panic!("expected Fwd")
                        };
                        debug_assert_eq!(mb, m);
                        let y = stage.forward(mb, x);
                        if let Some(next) = &next_fwd {
                            next.send(Msg::Fwd(mb, y)).expect("send fwd");
                        } else {
                            // last stage: loss + gradient, start backward
                            let (loss, dlogits) =
                                ops::softmax_cross_entropy(&y, &labels[it][mb]);
                            loss_tx.send(loss).expect("send loss");
                            let dy = stage.backward(mb, dlogits);
                            if mode == Mode::Asynchronous {
                                stage.step_immediate(mb);
                            }
                            if let Some(prev) = &prev_bwd {
                                prev.send(Msg::Bwd(mb, dy)).expect("send bwd");
                            }
                        }
                    }
                    // ---- backward phase (non-last stages) ----
                    if next_fwd.is_some() {
                        for _ in 0..cfg.microbatches {
                            let Msg::Bwd(mb, g) = my_bwd.recv().expect("bwd channel") else {
                                panic!("expected Bwd")
                            };
                            let dy = stage.backward(mb, g);
                            if mode == Mode::Asynchronous {
                                stage.step_immediate(mb);
                            }
                            if let Some(prev) = &prev_bwd {
                                prev.send(Msg::Bwd(mb, dy)).expect("send bwd");
                            }
                        }
                    }
                    // ---- synchronous update ----
                    if mode == Mode::Synchronous {
                        stage.step();
                    }
                }
                stage
            }));
        }
        drop(loss_tx);

        // driver: inject micro-batches into stage 0
        for xs in inputs_per_iter {
            for (m, x) in xs.into_iter().enumerate() {
                fwd_tx[0].send(Msg::Fwd(m, x)).expect("inject");
            }
        }

        handles.into_iter().map(|h| h.join().expect("stage thread")).collect()
    });

    // mean loss per iteration
    let all_losses: Vec<f32> = loss_rx.iter().collect();
    assert_eq!(all_losses.len(), cfg.iterations * cfg.microbatches);
    let losses = all_losses
        .chunks(cfg.microbatches)
        .map(|c| c.iter().sum::<f32>() / c.len() as f32)
        .collect();
    (losses, trained)
}

/// Single-device reference: identical math to the synchronous pipeline
/// (same micro-batch split, same gradient summation order).
pub fn train_single(
    stage: &mut Stage,
    data: &Dataset,
    cfg: &TrainConfig,
    mode: Mode,
) -> Vec<f32> {
    let micro = cfg.batch_size / cfg.microbatches;
    let mut losses = Vec::with_capacity(cfg.iterations);
    for it in 0..cfg.iterations {
        let (x, y) = data.batch(it, cfg.batch_size);
        let mut iter_loss = 0.0f32;
        for m in 0..cfg.microbatches {
            let xm = x.rows_slice(m * micro, (m + 1) * micro);
            let ym = &y[m * micro..(m + 1) * micro];
            let logits = stage.forward(m, xm);
            let (loss, dlogits) = ops::softmax_cross_entropy(&logits, ym);
            iter_loss += loss;
            let _ = stage.backward(m, dlogits);
            if mode == Mode::Asynchronous {
                stage.step_immediate(m);
            }
        }
        if mode == Mode::Synchronous {
            stage.step();
        }
        losses.push(iter_loss / cfg.microbatches as f32);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{build_mlp, split_into_stages};

    fn cfg() -> TrainConfig {
        TrainConfig {
            iterations: 10,
            batch_size: 16,
            microbatches: 4,
        }
    }

    #[test]
    fn sync_pipeline_matches_single_device_bitwise() {
        // The paper's loss validation, strengthened: identical losses.
        let data = Dataset::synthetic(64, 8, 4, 11);
        let dims = [8usize, 32, 32, 32, 4];

        let mut single = Stage::new(build_mlp(&dims, 5), 0.01);
        let ref_losses = train_single(&mut single, &data, &cfg(), Mode::Synchronous);

        for n_stages in [2usize, 3, 4] {
            let stages = split_into_stages(build_mlp(&dims, 5), n_stages, 0.01);
            let (losses, _) = train_pipeline(stages, &data, &cfg(), Mode::Synchronous);
            assert_eq!(
                losses, ref_losses,
                "sync pipeline with {n_stages} stages diverged from reference"
            );
        }
    }

    #[test]
    fn async_pipeline_diverges_from_reference() {
        let data = Dataset::synthetic(64, 8, 4, 11);
        let dims = [8usize, 32, 32, 32, 4];
        let mut single = Stage::new(build_mlp(&dims, 5), 0.01);
        let ref_losses = train_single(&mut single, &data, &cfg(), Mode::Synchronous);
        let stages = split_into_stages(build_mlp(&dims, 5), 3, 0.01);
        let (losses, _) = train_pipeline(stages, &data, &cfg(), Mode::Asynchronous);
        let max_diff = losses
            .iter()
            .zip(&ref_losses)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff > 1e-4, "async should drift, max diff = {max_diff}");
    }

    #[test]
    fn training_reduces_loss() {
        let data = Dataset::synthetic(128, 8, 4, 3);
        let stages = split_into_stages(build_mlp(&[8, 32, 32, 4], 9), 2, 0.01);
        let c = TrainConfig {
            iterations: 60,
            batch_size: 32,
            microbatches: 4,
        };
        let (losses, _) = train_pipeline(stages, &data, &c, Mode::Synchronous);
        let head: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(tail < head * 0.8, "no learning: head {head} tail {tail}");
    }

    #[test]
    fn final_weights_match_between_single_and_pipeline() {
        let data = Dataset::synthetic(64, 8, 4, 11);
        let dims = [8usize, 16, 16, 4];
        let mut single = Stage::new(build_mlp(&dims, 5), 0.01);
        let _ = train_single(&mut single, &data, &cfg(), Mode::Synchronous);
        let stages = split_into_stages(build_mlp(&dims, 5), 2, 0.01);
        let (_, trained) = train_pipeline(stages, &data, &cfg(), Mode::Synchronous);
        // concatenate trained pipeline weights in layer order and compare
        let mut single_linears = Vec::new();
        for l in single.layers() {
            if let crate::layer::Layer::Linear { w, .. } = l {
                single_linears.push(w.clone());
            }
        }
        let mut pipe_linears = Vec::new();
        for st in &trained {
            for l in st.layers() {
                if let crate::layer::Layer::Linear { w, .. } = l {
                    pipe_linears.push(w.clone());
                }
            }
        }
        assert_eq!(single_linears.len(), pipe_linears.len());
        for (a, b) in single_linears.iter().zip(&pipe_linears) {
            assert_eq!(a.data, b.data, "weights diverged");
        }
    }
}
