//! The threaded pipeline-parallel trainer.
//!
//! Each stage runs on its own OS thread; activations and gradients travel
//! through bounded channels, exactly mirroring Fig. 1 of the paper:
//! micro-batches flow forward through the stages, then their gradients
//! flow back, then (synchronous mode) every stage applies one optimizer
//! step — so the parameters every micro-batch saw are identical and the
//! run is **bit-equivalent** to single-device training with gradient
//! accumulation.
//!
//! Asynchronous mode applies each micro-batch's gradient the moment its
//! backward completes, so micro-batches that were forwarded earlier are
//! backpropagated against *newer* weights — PipeDream-style parameter
//! staleness, without weight stashing.
//!
//! Every channel operation carries a timeout and every failure path is a
//! typed [`TrainError`]: a dead or hung stage unwinds the whole pipeline
//! within one timeout instead of deadlocking it, which is what the
//! fault-tolerant supervisor in [`crate::ft`] builds on.

use crate::channel::{bounded, RecvError, SendError, Sender};
use crate::data::Dataset;
use crate::error::TrainError;
use crate::stage::Stage;
use rannc_cost::SimTicks;
use rannc_tensor::{ops, Matrix};
use std::time::{Duration, Instant};

/// Update discipline of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Staleness-free: accumulate gradients, step after the full
    /// mini-batch (what RaNNC/GPipe do).
    Synchronous,
    /// Apply each micro-batch's gradients immediately (what asynchronous
    /// pipelines risk).
    Asynchronous,
}

/// Training-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Training iterations (mini-batches).
    pub iterations: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Micro-batches per mini-batch (must divide `batch_size`).
    pub microbatches: usize,
}

impl TrainConfig {
    fn validate(&self, n_stages: usize) -> Result<(), TrainError> {
        if n_stages == 0 {
            return Err(TrainError::InvalidConfig("no stages".into()));
        }
        if self.microbatches == 0 {
            return Err(TrainError::InvalidConfig("zero micro-batches".into()));
        }
        if self.batch_size == 0 {
            return Err(TrainError::InvalidConfig("zero batch size".into()));
        }
        if !self.batch_size.is_multiple_of(self.microbatches) {
            return Err(TrainError::InvalidConfig(format!(
                "batch size {} not divisible by {} micro-batches",
                self.batch_size, self.microbatches
            )));
        }
        Ok(())
    }
}

/// Per-stage fault-injection context (neutral by default). Built from a
/// `rannc_faults::FaultPlan` by [`crate::ft`]; the plain trainer runs with
/// all-neutral contexts.
#[derive(Debug, Clone)]
pub(crate) struct StageFaultCtx {
    /// Die at the start of this global iteration.
    pub kill_at: Option<usize>,
    /// Die by panicking instead of returning (exercises the supervisor's
    /// join-error path).
    pub kill_by_panic: bool,
    /// Compute slowdown factor (`>= 1`; sleeps, does not change math).
    pub slowdown: f64,
    /// Remaining link bandwidth fraction (`(0, 1]`; sleeps on sends).
    pub link_factor: f64,
    /// Per-transfer transient failure probability (adds a deterministic
    /// retry delay, never loses data).
    pub comm_prob: f64,
    /// Seed for the stateless transient-failure draws.
    pub seed: u64,
    /// Nominal compute/transfer tick durations the injected delays scale
    /// (shared with the cost layer so simulated and planned time agree).
    pub ticks: SimTicks,
}

impl Default for StageFaultCtx {
    fn default() -> Self {
        StageFaultCtx {
            kill_at: None,
            kill_by_panic: false,
            slowdown: 1.0,
            link_factor: 1.0,
            comm_prob: 0.0,
            seed: 0,
            ticks: SimTicks::default(),
        }
    }
}

impl StageFaultCtx {
    fn compute_delay(&self) {
        if self.slowdown > 1.0 {
            std::thread::sleep(self.ticks.compute.mul_f64(self.slowdown - 1.0));
        }
    }

    /// Delay one inter-stage transfer: link degradation stretches it,
    /// and a transient failure (a stateless deterministic draw keyed on
    /// the transfer's coordinates, so replays see identical faults
    /// regardless of thread timing) costs one retransmit.
    fn comm_delay(&self, it: usize, mb: usize, stage: usize) {
        if self.link_factor < 1.0 {
            std::thread::sleep(self.ticks.comm.mul_f64(1.0 / self.link_factor - 1.0));
        }
        if self.comm_prob > 0.0 {
            let h = splitmix(self.seed ^ (it as u64) << 40 ^ (mb as u64) << 20 ^ stage as u64);
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit < self.comm_prob {
                std::thread::sleep(self.ticks.comm); // retransmit
            }
        }
    }
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

enum Msg {
    Fwd(usize, Matrix),
    Bwd(usize, Matrix),
}

/// How a stage thread died (stage index is its position in the results).
enum StageFail {
    /// Injected `DeviceFail` fired at this global iteration.
    Killed { at_iter: usize },
    /// A channel operation timed out (hung neighbour).
    Stalled,
    /// A neighbour's endpoint dropped (cascade from another failure).
    Disconnected,
}

/// Channel timeout for plain (non-fault-injected) training runs.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Train `stages` as a thread-per-stage pipeline over `data`.
///
/// Returns the per-iteration mean losses and the trained stages (so
/// callers can inspect final weights). Any stage failure — panic, hang,
/// or dropped channel — surfaces as a typed [`TrainError`] instead of
/// poisoning the thread scope.
pub fn train_pipeline(
    stages: Vec<Stage>,
    data: &Dataset,
    cfg: &TrainConfig,
    mode: Mode,
) -> Result<(Vec<f32>, Vec<Stage>), TrainError> {
    run_segment(
        stages,
        data,
        cfg,
        mode,
        0..cfg.iterations,
        &[],
        DEFAULT_TIMEOUT,
    )
}

/// Run iterations `range` of a training job: the unit of work between two
/// checkpoints. Shared by [`train_pipeline`] (whole job, no faults) and
/// the fault-tolerant supervisor (one segment per call, with injection).
pub(crate) fn run_segment(
    stages: Vec<Stage>,
    data: &Dataset,
    cfg: &TrainConfig,
    mode: Mode,
    range: std::ops::Range<usize>,
    faults: &[StageFaultCtx],
    timeout: Duration,
) -> Result<(Vec<f32>, Vec<Stage>), TrainError> {
    cfg.validate(stages.len())?;
    let _seg = rannc_obs::trace::span("segment", "train")
        .arg_i("from_iter", range.start as i64)
        .arg_i("to_iter", range.end as i64)
        .arg_i("stages", stages.len() as i64);
    let n_stages = stages.len();
    assert!(
        faults.is_empty() || faults.len() == n_stages,
        "fault contexts must match stage count"
    );
    let micro = cfg.batch_size / cfg.microbatches;
    let iters: Vec<usize> = range.collect();

    // micro-batch inputs (driver side) and labels (last stage side),
    // precomputed per iteration in the segment
    let mut labels_per_iter: Vec<Vec<Vec<usize>>> = Vec::with_capacity(iters.len());
    let mut inputs_per_iter: Vec<Vec<Matrix>> = Vec::with_capacity(iters.len());
    for &it in &iters {
        let (x, y) = data.batch(it, cfg.batch_size);
        let mut xs = Vec::with_capacity(cfg.microbatches);
        let mut ys = Vec::with_capacity(cfg.microbatches);
        for m in 0..cfg.microbatches {
            xs.push(x.rows_slice(m * micro, (m + 1) * micro));
            ys.push(y[m * micro..(m + 1) * micro].to_vec());
        }
        inputs_per_iter.push(xs);
        labels_per_iter.push(ys);
    }
    let labels_per_iter = &labels_per_iter;
    let iters_ref = &iters;

    // channels: fwd[s] feeds stage s; bwd[s] feeds stage s (from s+1)
    let cap = cfg.microbatches;
    let mut fwd_tx = Vec::with_capacity(n_stages);
    let mut fwd_rx = Vec::with_capacity(n_stages);
    let mut bwd_tx = Vec::with_capacity(n_stages);
    let mut bwd_rx = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let (t, r) = bounded::<Msg>(cap);
        fwd_tx.push(Some(t));
        fwd_rx.push(Some(r));
        let (t, r) = bounded::<Msg>(cap);
        bwd_tx.push(Some(t));
        bwd_rx.push(Some(r));
    }
    let (loss_tx, loss_rx) = bounded::<f32>(cap);
    let mut loss_tx = Some(loss_tx);

    type StageOutcome = Result<Stage, StageFail>;
    let (outcomes, losses_flat, driver_err) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_stages);
        for (s, mut stage) in stages.into_iter().enumerate() {
            let my_fwd = fwd_rx[s].take().expect("fwd receiver");
            let my_bwd = bwd_rx[s].take().expect("bwd receiver");
            let next_fwd = (s + 1 < n_stages).then(|| fwd_tx[s + 1].as_ref().unwrap().clone());
            let prev_bwd = (s > 0).then(|| bwd_tx[s - 1].as_ref().unwrap().clone());
            let my_loss = (s + 1 == n_stages).then(|| loss_tx.as_ref().unwrap().clone());
            let fault = faults.get(s).cloned().unwrap_or_default();
            let cfg = *cfg;
            handles.push(scope.spawn(move || -> StageOutcome {
                let send = |tx: &Sender<Msg>, msg: Msg| -> Result<(), StageFail> {
                    match tx.send_timeout(msg, timeout) {
                        Ok(()) => Ok(()),
                        Err(SendError::Timeout(_)) => Err(StageFail::Stalled),
                        Err(SendError::Disconnected(_)) => Err(StageFail::Disconnected),
                    }
                };
                for &it in iters_ref.iter() {
                    if fault.kill_at == Some(it) {
                        if fault.kill_by_panic {
                            panic!("injected fault: stage {s} dies at iteration {it}");
                        }
                        return Err(StageFail::Killed { at_iter: it });
                    }
                    let idx = it - iters_ref[0];
                    // ---- forward phase ----
                    for m in 0..cfg.microbatches {
                        let msg = match my_fwd.recv_timeout(timeout) {
                            Ok(msg) => msg,
                            Err(RecvError::Timeout) => return Err(StageFail::Stalled),
                            Err(RecvError::Disconnected) => return Err(StageFail::Disconnected),
                        };
                        let Msg::Fwd(mb, x) = msg else {
                            return Err(StageFail::Disconnected);
                        };
                        debug_assert_eq!(mb, m);
                        fault.compute_delay();
                        let y = stage.forward(mb, x);
                        if let Some(next) = &next_fwd {
                            fault.comm_delay(it, mb, s);
                            send(next, Msg::Fwd(mb, y))?;
                        } else {
                            // last stage: loss + gradient, start backward
                            let (loss, dlogits) =
                                ops::softmax_cross_entropy(&y, &labels_per_iter[idx][mb]);
                            if let Some(loss_tx) = &my_loss {
                                match loss_tx.send_timeout(loss, timeout) {
                                    Ok(()) => {}
                                    Err(SendError::Timeout(_)) => return Err(StageFail::Stalled),
                                    Err(SendError::Disconnected(_)) => {
                                        return Err(StageFail::Disconnected)
                                    }
                                }
                            }
                            let dy = stage.backward(mb, dlogits);
                            if mode == Mode::Asynchronous {
                                stage.step_immediate(mb);
                            }
                            if let Some(prev) = &prev_bwd {
                                fault.comm_delay(it, mb, s);
                                send(prev, Msg::Bwd(mb, dy))?;
                            }
                        }
                    }
                    // ---- backward phase (non-last stages) ----
                    if next_fwd.is_some() {
                        for _ in 0..cfg.microbatches {
                            let msg = match my_bwd.recv_timeout(timeout) {
                                Ok(msg) => msg,
                                Err(RecvError::Timeout) => return Err(StageFail::Stalled),
                                Err(RecvError::Disconnected) => {
                                    return Err(StageFail::Disconnected)
                                }
                            };
                            let Msg::Bwd(mb, g) = msg else {
                                return Err(StageFail::Disconnected);
                            };
                            fault.compute_delay();
                            let dy = stage.backward(mb, g);
                            if mode == Mode::Asynchronous {
                                stage.step_immediate(mb);
                            }
                            if let Some(prev) = &prev_bwd {
                                fault.comm_delay(it, mb, s);
                                send(prev, Msg::Bwd(mb, dy))?;
                            }
                        }
                    }
                    // ---- synchronous update ----
                    if mode == Mode::Synchronous {
                        stage.step();
                    }
                }
                Ok(stage)
            }));
        }
        // the supervisor keeps only its injector; dropping every other
        // original sender arms the disconnect cascade
        let injector = fwd_tx[0].take().expect("injector");
        for tx in fwd_tx.iter_mut().skip(1) {
            *tx = None;
        }
        for tx in bwd_tx.iter_mut() {
            *tx = None;
        }
        loss_tx = None;

        // supervisor loop: feed one iteration, collect its losses — any
        // stage death or hang surfaces here within one timeout
        let mut losses_flat: Vec<f32> = Vec::with_capacity(iters_ref.len() * cfg.microbatches);
        let mut driver_err: Option<TrainError> = None;
        let step_hist = rannc_obs::metrics::histogram("train.step_seconds");
        let step_count = rannc_obs::metrics::counter("train.iterations");
        'drive: for (idx, xs) in inputs_per_iter.into_iter().enumerate() {
            let it = iters_ref[idx];
            let step_started = Instant::now();
            for (m, x) in xs.into_iter().enumerate() {
                if injector.send_timeout(Msg::Fwd(m, x), timeout).is_err() {
                    driver_err = Some(TrainError::SupervisorTimeout { at_iter: it });
                    break 'drive;
                }
            }
            for _ in 0..cfg.microbatches {
                match loss_rx.recv_timeout(timeout) {
                    Ok(loss) => losses_flat.push(loss),
                    Err(_) => {
                        driver_err = Some(TrainError::SupervisorTimeout { at_iter: it });
                        break 'drive;
                    }
                }
            }
            step_hist.observe(step_started.elapsed().as_secs_f64());
            step_count.inc();
        }
        // unwind: dropping the injector (and later the loss receiver)
        // lets surviving threads observe disconnects and exit
        drop(injector);
        let outcomes: Vec<Result<StageOutcome, ()>> = handles
            .into_iter()
            .map(|h| h.join().map_err(|_| ()))
            .collect();
        (outcomes, losses_flat, driver_err)
    });

    // classify the run: injected kills dominate, then panics, then the
    // supervisor's own timeout, then secondary stalls/disconnects
    let mut killed: Option<(usize, usize)> = None;
    let mut panicked: Option<usize> = None;
    let mut stalled: Option<usize> = None;
    for (s, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Err(()) => panicked = panicked.or(Some(s)),
            Ok(Err(StageFail::Killed { at_iter })) => {
                if killed.map(|(_, at)| *at_iter < at).unwrap_or(true) {
                    killed = Some((s, *at_iter));
                }
            }
            Ok(Err(StageFail::Stalled)) | Ok(Err(StageFail::Disconnected)) => {
                stalled = stalled.or(Some(s))
            }
            Ok(Ok(_)) => {}
        }
    }
    if let Some((stage, at_iter)) = killed {
        return Err(TrainError::StageKilled { stage, at_iter });
    }
    if let Some(stage) = panicked {
        return Err(TrainError::StagePanicked { stage });
    }
    if let Some(err) = driver_err {
        return Err(err);
    }
    if let Some(stage) = stalled {
        return Err(TrainError::StageStalled { stage });
    }

    let trained: Vec<Stage> = outcomes
        .into_iter()
        .map(|o| match o {
            Ok(Ok(stage)) => stage,
            _ => unreachable!("failures classified above"),
        })
        .collect();
    debug_assert_eq!(losses_flat.len(), iters.len() * cfg.microbatches);
    let losses = losses_flat
        .chunks(cfg.microbatches)
        .map(|c| c.iter().sum::<f32>() / c.len() as f32)
        .collect();
    Ok((losses, trained))
}

/// Single-device reference: identical math to the synchronous pipeline
/// (same micro-batch split, same gradient summation order).
pub fn train_single(stage: &mut Stage, data: &Dataset, cfg: &TrainConfig, mode: Mode) -> Vec<f32> {
    let micro = cfg.batch_size / cfg.microbatches;
    let mut losses = Vec::with_capacity(cfg.iterations);
    for it in 0..cfg.iterations {
        let (x, y) = data.batch(it, cfg.batch_size);
        let mut iter_loss = 0.0f32;
        for m in 0..cfg.microbatches {
            let xm = x.rows_slice(m * micro, (m + 1) * micro);
            let ym = &y[m * micro..(m + 1) * micro];
            let logits = stage.forward(m, xm);
            let (loss, dlogits) = ops::softmax_cross_entropy(&logits, ym);
            iter_loss += loss;
            let _ = stage.backward(m, dlogits);
            if mode == Mode::Asynchronous {
                stage.step_immediate(m);
            }
        }
        if mode == Mode::Synchronous {
            stage.step();
        }
        losses.push(iter_loss / cfg.microbatches as f32);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{build_mlp, split_into_stages};

    fn cfg() -> TrainConfig {
        TrainConfig {
            iterations: 10,
            batch_size: 16,
            microbatches: 4,
        }
    }

    #[test]
    fn sync_pipeline_matches_single_device_bitwise() {
        // The paper's loss validation, strengthened: identical losses.
        let data = Dataset::synthetic(64, 8, 4, 11);
        let dims = [8usize, 32, 32, 32, 4];

        let mut single = Stage::new(build_mlp(&dims, 5), 0.01);
        let ref_losses = train_single(&mut single, &data, &cfg(), Mode::Synchronous);

        for n_stages in [1usize, 2, 3, 4] {
            let stages = split_into_stages(build_mlp(&dims, 5), n_stages, 0.01);
            let (losses, _) = train_pipeline(stages, &data, &cfg(), Mode::Synchronous).unwrap();
            assert_eq!(
                losses, ref_losses,
                "sync pipeline with {n_stages} stages diverged from reference"
            );
        }
    }

    #[test]
    fn async_pipeline_diverges_from_reference() {
        let data = Dataset::synthetic(64, 8, 4, 11);
        let dims = [8usize, 32, 32, 32, 4];
        let mut single = Stage::new(build_mlp(&dims, 5), 0.01);
        let ref_losses = train_single(&mut single, &data, &cfg(), Mode::Synchronous);
        let stages = split_into_stages(build_mlp(&dims, 5), 3, 0.01);
        let (losses, _) = train_pipeline(stages, &data, &cfg(), Mode::Asynchronous).unwrap();
        let max_diff = losses
            .iter()
            .zip(&ref_losses)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff > 1e-4, "async should drift, max diff = {max_diff}");
    }

    #[test]
    fn training_reduces_loss() {
        let data = Dataset::synthetic(128, 8, 4, 3);
        let stages = split_into_stages(build_mlp(&[8, 32, 32, 4], 9), 2, 0.01);
        let c = TrainConfig {
            iterations: 60,
            batch_size: 32,
            microbatches: 4,
        };
        let (losses, _) = train_pipeline(stages, &data, &c, Mode::Synchronous).unwrap();
        let head: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(tail < head * 0.8, "no learning: head {head} tail {tail}");
    }

    #[test]
    fn final_weights_match_between_single_and_pipeline() {
        let data = Dataset::synthetic(64, 8, 4, 11);
        let dims = [8usize, 16, 16, 4];
        let mut single = Stage::new(build_mlp(&dims, 5), 0.01);
        let _ = train_single(&mut single, &data, &cfg(), Mode::Synchronous);
        let stages = split_into_stages(build_mlp(&dims, 5), 2, 0.01);
        let (_, trained) = train_pipeline(stages, &data, &cfg(), Mode::Synchronous).unwrap();
        // concatenate trained pipeline weights in layer order and compare
        let mut single_linears = Vec::new();
        for l in single.layers() {
            if let crate::layer::Layer::Linear { w, .. } = l {
                single_linears.push(w.clone());
            }
        }
        let mut pipe_linears = Vec::new();
        for st in &trained {
            for l in st.layers() {
                if let crate::layer::Layer::Linear { w, .. } = l {
                    pipe_linears.push(w.clone());
                }
            }
        }
        assert_eq!(single_linears.len(), pipe_linears.len());
        for (a, b) in single_linears.iter().zip(&pipe_linears) {
            assert_eq!(a.data, b.data, "weights diverged");
        }
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let data = Dataset::synthetic(16, 8, 4, 1);
        let stages = split_into_stages(build_mlp(&[8, 16, 4], 1), 2, 0.01);
        let bad = TrainConfig {
            iterations: 2,
            batch_size: 10,
            microbatches: 4, // does not divide 10
        };
        match train_pipeline(stages, &data, &bad, Mode::Synchronous) {
            Err(TrainError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let empty: Vec<Stage> = Vec::new();
        match train_pipeline(empty, &data, &cfg(), Mode::Synchronous) {
            Err(TrainError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn injected_kill_is_detected_and_typed() {
        let data = Dataset::synthetic(64, 8, 4, 11);
        let stages = split_into_stages(build_mlp(&[8, 32, 32, 4], 5), 3, 0.01);
        let mut faults = vec![StageFaultCtx::default(); 3];
        faults[1].kill_at = Some(4);
        let err = run_segment(
            stages,
            &data,
            &cfg(),
            Mode::Synchronous,
            0..10,
            &faults,
            Duration::from_millis(300),
        )
        .unwrap_err();
        assert_eq!(
            err,
            TrainError::StageKilled {
                stage: 1,
                at_iter: 4
            }
        );
    }

    #[test]
    fn injected_panic_is_detected_and_typed() {
        let data = Dataset::synthetic(64, 8, 4, 11);
        let stages = split_into_stages(build_mlp(&[8, 32, 32, 4], 5), 3, 0.01);
        let mut faults = vec![StageFaultCtx::default(); 3];
        faults[2].kill_at = Some(3);
        faults[2].kill_by_panic = true;
        let err = run_segment(
            stages,
            &data,
            &cfg(),
            Mode::Synchronous,
            0..10,
            &faults,
            Duration::from_millis(300),
        )
        .unwrap_err();
        assert_eq!(err, TrainError::StagePanicked { stage: 2 });
    }

    #[test]
    fn straggler_and_comm_faults_do_not_change_math() {
        let data = Dataset::synthetic(64, 8, 4, 11);
        let dims = [8usize, 32, 32, 4];
        let clean = train_pipeline(
            split_into_stages(build_mlp(&dims, 5), 2, 0.01),
            &data,
            &cfg(),
            Mode::Synchronous,
        )
        .unwrap()
        .0;
        let mut faults = vec![StageFaultCtx::default(); 2];
        faults[0].slowdown = 2.0;
        faults[1].link_factor = 0.5;
        faults[1].comm_prob = 0.3;
        faults[1].seed = 99;
        let slowed = run_segment(
            split_into_stages(build_mlp(&dims, 5), 2, 0.01),
            &data,
            &cfg(),
            Mode::Synchronous,
            0..10,
            &faults,
            Duration::from_secs(10),
        )
        .unwrap()
        .0;
        assert_eq!(clean, slowed, "latency faults must not alter results");
    }
}
