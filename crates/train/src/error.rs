//! Typed errors for the threaded trainer.

/// Why a training run (or one segment of a fault-tolerant run) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The configuration is unusable (empty stages, indivisible batch…).
    InvalidConfig(String),
    /// A stage died from an injected `DeviceFail` at the given iteration.
    StageKilled {
        /// Stage index that died.
        stage: usize,
        /// Global iteration at which the fault fired.
        at_iter: usize,
    },
    /// A stage thread panicked (unscripted crash).
    StagePanicked {
        /// Stage index whose thread panicked.
        stage: usize,
    },
    /// A stage made no progress before its channel timeout — a hang or a
    /// dead neighbour the disconnect cascade did not reach.
    StageStalled {
        /// Stage index that timed out.
        stage: usize,
    },
    /// The supervisor (driver thread) timed out feeding inputs or
    /// collecting losses.
    SupervisorTimeout {
        /// Global iteration being processed when the timeout hit.
        at_iter: usize,
    },
    /// Recovery was attempted more times than the configured limit —
    /// the fault plan keeps killing faster than checkpoints advance.
    TooManyRecoveries {
        /// The configured attempt limit.
        limit: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::InvalidConfig(why) => write!(f, "invalid training config: {why}"),
            TrainError::StageKilled { stage, at_iter } => {
                write!(f, "stage {stage} killed at iteration {at_iter}")
            }
            TrainError::StagePanicked { stage } => write!(f, "stage {stage} thread panicked"),
            TrainError::StageStalled { stage } => {
                write!(f, "stage {stage} stalled past its channel timeout")
            }
            TrainError::SupervisorTimeout { at_iter } => {
                write!(f, "supervisor timed out at iteration {at_iter}")
            }
            TrainError::TooManyRecoveries { limit } => {
                write!(f, "exceeded recovery attempt limit ({limit})")
            }
        }
    }
}

impl std::error::Error for TrainError {}
