//! Trainable layers with per-micro-batch activation caches.
//!
//! Pipeline parallelism keeps several micro-batches in flight, so a layer
//! must stash the forward activations of each micro-batch separately
//! until its backward arrives — the same bookkeeping RaNNC's runtime does
//! per stage (with gradient checkpointing it stashes stage inputs only;
//! here stages are small, so we stash per layer).

use rannc_tensor::{ops, Matrix};
use std::collections::HashMap;

/// One layer of a stage.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Fully-connected: `y = x·W + b`.
    Linear {
        /// Weight `[in, out]`.
        w: Matrix,
        /// Bias `[out]`.
        b: Vec<f32>,
        /// Stashed forward inputs, keyed by micro-batch id.
        cache: HashMap<usize, Matrix>,
        /// Per-micro-batch weight gradients (summed at `step` time in
        /// micro-batch order for determinism).
        dw: HashMap<usize, Matrix>,
        /// Per-micro-batch bias gradients.
        db: HashMap<usize, Vec<f32>>,
    },
    /// Element-wise ReLU.
    Relu {
        /// Stashed forward inputs.
        cache: HashMap<usize, Matrix>,
    },
    /// Element-wise tanh.
    Tanh {
        /// Stashed forward *outputs* (tanh's backward uses y).
        cache: HashMap<usize, Matrix>,
    },
    /// A pre-LN Transformer block (see [`crate::transformer`]); treats
    /// each micro-batch's rows as sequence positions.
    Transformer(Box<crate::transformer::TransformerBlock>),
}

impl Layer {
    /// A Xavier-initialized linear layer with a deterministic seed.
    pub fn linear(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Layer::Linear {
            w: Matrix::xavier(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
            cache: HashMap::new(),
            dw: HashMap::new(),
            db: HashMap::new(),
        }
    }

    /// A ReLU layer.
    pub fn relu() -> Self {
        Layer::Relu {
            cache: HashMap::new(),
        }
    }

    /// A tanh layer.
    pub fn tanh() -> Self {
        Layer::Tanh {
            cache: HashMap::new(),
        }
    }

    /// A Transformer block of width `hidden` with an `ff`-wide FFN.
    pub fn transformer(hidden: usize, ff: usize, seed: u64) -> Self {
        Layer::Transformer(Box::new(crate::transformer::TransformerBlock::new(
            hidden, ff, seed,
        )))
    }

    /// Forward one micro-batch, stashing what backward will need.
    pub fn forward(&mut self, mb: usize, x: Matrix) -> Matrix {
        match self {
            Layer::Linear { w, b, cache, .. } => {
                let mut y = ops::matmul(&x, w);
                ops::add_bias(&mut y, b);
                cache.insert(mb, x);
                y
            }
            Layer::Relu { cache } => {
                let y = ops::relu(&x);
                cache.insert(mb, x);
                y
            }
            Layer::Tanh { cache } => {
                let y = ops::tanh(&x);
                cache.insert(mb, y.clone());
                y
            }
            Layer::Transformer(block) => block.forward(mb, x),
        }
    }

    /// Backward one micro-batch; records parameter gradients and returns
    /// the input gradient. Consumes (removes) the stash for `mb`.
    pub fn backward(&mut self, mb: usize, dy: Matrix) -> Matrix {
        match self {
            Layer::Linear {
                w, cache, dw, db, ..
            } => {
                let x = cache.remove(&mb).expect("no stashed forward for mb");
                dw.insert(mb, ops::matmul_tn(&x, &dy));
                db.insert(mb, ops::col_sums(&dy));
                ops::matmul_nt(&dy, w)
            }
            Layer::Relu { cache } => {
                let x = cache.remove(&mb).expect("no stashed forward for mb");
                ops::relu_backward(&x, &dy)
            }
            Layer::Tanh { cache } => {
                let y = cache.remove(&mb).expect("no stashed forward for mb");
                ops::tanh_backward(&y, &dy)
            }
            Layer::Transformer(block) => block.backward(mb, dy),
        }
    }

    /// Optimizer-state slots reserved per layer (a Transformer block uses
    /// twelve; a linear layer two).
    pub const SLOT_STRIDE: usize = 16;

    /// Apply accumulated gradients with `opt`, summing micro-batch
    /// contributions in ascending micro-batch order (bit-deterministic).
    /// `slot` is the layer index; each layer owns the optimizer-state
    /// range `[slot * SLOT_STRIDE, (slot + 1) * SLOT_STRIDE)`.
    pub fn step(&mut self, opt: &mut dyn rannc_tensor::Optimizer, slot: usize) {
        let base = Self::SLOT_STRIDE * slot;
        match self {
            Layer::Linear { w, b, dw, db, .. } => {
                if dw.is_empty() {
                    return;
                }
                let mut keys: Vec<usize> = dw.keys().copied().collect();
                keys.sort_unstable();
                let mut dw_sum = Matrix::zeros(w.rows, w.cols);
                let mut db_sum = vec![0.0f32; b.len()];
                for k in keys {
                    let g = dw.remove(&k).unwrap();
                    ops::axpy(&mut dw_sum.data, 1.0, &g.data);
                    ops::axpy(&mut db_sum, 1.0, &db.remove(&k).unwrap());
                }
                opt.step(base, &mut w.data, &dw_sum.data);
                opt.step(base + 1, b, &db_sum);
            }
            Layer::Transformer(block) => block.step(opt, base),
            _ => {}
        }
    }

    /// Apply ONE micro-batch's gradient immediately (the asynchronous,
    /// staleness-inducing update used by the async trainer).
    pub fn step_immediate(
        &mut self,
        mb: usize,
        opt: &mut dyn rannc_tensor::Optimizer,
        slot: usize,
    ) {
        let base = Self::SLOT_STRIDE * slot;
        match self {
            Layer::Linear { w, b, dw, db, .. } => {
                if let (Some(g), Some(gb)) = (dw.remove(&mb), db.remove(&mb)) {
                    opt.step(base, &mut w.data, &g.data);
                    opt.step(base + 1, b, &gb);
                }
            }
            Layer::Transformer(block) => block.step_immediate(mb, opt, base),
            _ => {}
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Linear { w, b, .. } => w.len() + b.len(),
            Layer::Transformer(block) => block.param_count(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_tensor::{Adam, Sgd};

    #[test]
    fn linear_forward_backward_shapes() {
        let mut l = Layer::linear(4, 3, 1);
        let x = Matrix::from_vec(2, 4, vec![0.5; 8]);
        let y = l.forward(0, x);
        assert_eq!((y.rows, y.cols), (2, 3));
        let dx = l.backward(0, Matrix::from_vec(2, 3, vec![1.0; 6]));
        assert_eq!((dx.rows, dx.cols), (2, 4));
    }

    #[test]
    fn linear_gradient_numeric_check() {
        // loss = sum(y); dW should equal columns of sum over batch of x
        let mut l = Layer::linear(3, 2, 7);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);
        let _ = l.forward(0, x.clone());
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = l.backward(0, dy);
        if let Layer::Linear { dw, .. } = &l {
            let g = &dw[&0];
            // dW[i][j] = sum_r x[r][i] (since dy = 1)
            for i in 0..3 {
                let expect = x.get(0, i) + x.get(1, i);
                assert!((g.get(i, 0) - expect).abs() < 1e-6);
                assert!((g.get(i, 1) - expect).abs() < 1e-6);
            }
        } else {
            unreachable!()
        }
    }

    #[test]
    fn step_sums_microbatches_in_order() {
        // two orders of backward arrival give the SAME update
        let run = |order: &[usize]| {
            let mut l = Layer::linear(2, 2, 3);
            for &mb in order {
                let x = Matrix::from_vec(1, 2, vec![mb as f32 + 0.5, -1.0]);
                let _ = l.forward(mb, x);
            }
            for &mb in order.iter().rev() {
                let _ = l.backward(mb, Matrix::from_vec(1, 2, vec![1.0, 0.5]));
            }
            let mut opt = Sgd::new(0.1);
            l.step(&mut opt, 0);
            match l {
                Layer::Linear { w, .. } => w,
                _ => unreachable!(),
            }
        };
        assert_eq!(run(&[0, 1, 2]).data, run(&[0, 1, 2]).data);
        // different arrival order, same summation order (sorted keys)
        let a = run(&[0, 1, 2]);
        let b = run(&[0, 1, 2]); // arrival order is forward order here
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn immediate_step_differs_from_accumulated() {
        let mk = || {
            let mut l = Layer::linear(2, 2, 3);
            for mb in 0..2 {
                let x = Matrix::from_vec(1, 2, vec![1.0, mb as f32]);
                let _ = l.forward(mb, x);
            }
            l
        };
        // accumulated
        let mut acc = mk();
        for mb in (0..2).rev() {
            let _ = acc.backward(mb, Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        }
        let mut opt = Adam::new(0.1);
        acc.step(&mut opt, 0);
        // immediate per-microbatch
        let mut imm = mk();
        let mut opt2 = Adam::new(0.1);
        for mb in (0..2).rev() {
            let _ = imm.backward(mb, Matrix::from_vec(1, 2, vec![1.0, 1.0]));
            imm.step_immediate(mb, &mut opt2, 0);
        }
        let (Layer::Linear { w: wa, .. }, Layer::Linear { w: wi, .. }) = (&acc, &imm) else {
            unreachable!()
        };
        assert!(wa.max_abs_diff(wi) > 1e-6, "Adam updates should differ");
    }

    #[test]
    #[should_panic(expected = "no stashed forward")]
    fn backward_without_forward_panics() {
        let mut l = Layer::relu();
        let _ = l.backward(0, Matrix::zeros(1, 1));
    }
}
