//! Fault-tolerant pipeline training: checkpoint, detect, restore, resume.
//!
//! The supervisor runs training as a sequence of **segments** between
//! parameter checkpoints. Each segment executes on the thread-per-stage
//! pipeline of [`crate::pipeline`]; a [`rannc_faults::FaultPlan`] scripts
//! which stage threads die and when (`rank` = stage index here). When a
//! segment fails, the supervisor classifies the failure, discards all
//! partial state, restores the last checkpoint, and re-runs the segment —
//! the scripted fault is consumed one-shot, modelling replacement
//! hardware (or a spare) taking over the lost stage.
//!
//! **Recovery is exact.** A checkpoint captures every stage (weights +
//! Adam moments) at an iteration boundary, where all micro-batch caches
//! are empty; segment replay from a checkpoint is therefore the same
//! deterministic computation the fault-free run performs, and the
//! recovered loss trajectory is bit-identical to a fault-free run — the
//! property [`FtReport::losses`] is tested against.
//!
//! Event semantics in the *trainer* (the analytical simulator in
//! `rannc-pipeline` interprets the same plan on its cost model):
//!
//! * `DeviceFail { rank, at_iter }` — stage `rank`'s thread dies at the
//!   start of iteration `at_iter` (return or panic, see
//!   [`FtConfig::kill_by_panic`]);
//! * `Straggler { rank, slowdown }` — stage `rank` sleeps proportionally
//!   to `slowdown` per micro-batch (latency only, math unchanged);
//! * `LinkDegrade { factor }` — every inter-stage transfer sleeps
//!   proportionally to `1/factor − 1`;
//! * `TransientCommError { prob }` — transfers pay a deterministic
//!   retransmit delay with probability `prob` (stateless seeded draws,
//!   so replays see identical faults). No event ever corrupts data.

use crate::data::Dataset;
use crate::error::TrainError;
use crate::pipeline::{run_segment, Mode, StageFaultCtx, TrainConfig};
use crate::stage::Stage;
use rannc_faults::FaultPlan;
use std::time::{Duration, Instant};

/// Supervisor parameters.
#[derive(Debug, Clone, Copy)]
pub struct FtConfig {
    /// Checkpoint the full pipeline state every this many iterations.
    pub checkpoint_every: usize,
    /// Channel timeout: the failure-detection bound. A dead stage is
    /// detected within roughly this much wall time.
    pub detect_timeout: Duration,
    /// Keep every checkpoint in the report (tests restart runs from
    /// them); otherwise only the latest is held.
    pub keep_checkpoints: bool,
    /// Inject `DeviceFail` as a thread panic instead of a clean exit,
    /// exercising the supervisor's join-error detection path.
    pub kill_by_panic: bool,
    /// Abort after this many recovery attempts.
    pub max_recoveries: usize,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            checkpoint_every: 5,
            detect_timeout: Duration::from_millis(500),
            keep_checkpoints: false,
            kill_by_panic: false,
            max_recoveries: 8,
        }
    }
}

/// A consistent snapshot of the whole pipeline at an iteration boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// First iteration *not yet* covered by this snapshot.
    pub next_iter: usize,
    /// Every stage's weights and optimizer state.
    pub stages: Vec<Stage>,
}

/// One detect→restore cycle.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// Stage whose thread died.
    pub failed_stage: usize,
    /// Iteration at which the fault fired (best known; panics report the
    /// segment's start).
    pub at_iter: usize,
    /// Checkpoint iteration the run was restored from.
    pub restored_from_iter: usize,
    /// Iterations of work discarded by the rollback.
    pub lost_iters: usize,
    /// Wall time the failed attempt consumed (lost work + detection).
    pub downtime: Duration,
}

/// Outcome of a fault-tolerant run.
#[derive(Debug, Clone)]
pub struct FtReport {
    /// Per-iteration mean losses for the *completed* run — bit-identical
    /// to a fault-free run of the same job.
    pub losses: Vec<f32>,
    /// Final trained stages.
    pub stages: Vec<Stage>,
    /// Every recovery performed, in order.
    pub recoveries: Vec<RecoveryRecord>,
    /// All checkpoints taken (only if [`FtConfig::keep_checkpoints`]).
    pub checkpoints: Vec<Checkpoint>,
    /// Total wall time of the run.
    pub wall: Duration,
}

impl FtReport {
    /// Mean time-to-recovery over the run's recoveries.
    pub fn mttr(&self) -> Duration {
        if self.recoveries.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.recoveries.iter().map(|r| r.downtime).sum();
        total / self.recoveries.len() as u32
    }
}

/// Train under a fault plan with checkpoint/restore recovery.
///
/// `plan` ranks are stage indices. Scripted `DeviceFail`s are consumed
/// one-shot: after recovery the stage is considered re-hosted and the
/// same failure does not refire.
pub fn train_with_faults(
    stages: Vec<Stage>,
    data: &Dataset,
    cfg: &TrainConfig,
    mode: Mode,
    plan: &FaultPlan,
    ft: &FtConfig,
) -> Result<FtReport, TrainError> {
    if ft.checkpoint_every == 0 {
        return Err(TrainError::InvalidConfig("zero checkpoint interval".into()));
    }
    let n_stages = stages.len();
    for &(rank, _) in plan.device_failures().iter() {
        if rank >= n_stages {
            return Err(TrainError::InvalidConfig(format!(
                "fault plan targets stage {rank} but the pipeline has {n_stages} stages"
            )));
        }
    }

    let started = Instant::now();
    let mut ckpt = Checkpoint {
        next_iter: 0,
        stages,
    };
    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    if ft.keep_checkpoints {
        checkpoints.push(ckpt.clone());
    }
    let mut losses: Vec<f32> = Vec::with_capacity(cfg.iterations);
    let mut recoveries: Vec<RecoveryRecord> = Vec::new();
    let mut remaining_failures = plan.device_failures();

    while ckpt.next_iter < cfg.iterations {
        let seg_end = (ckpt.next_iter + ft.checkpoint_every).min(cfg.iterations);
        let faults = fault_ctxs(plan, &remaining_failures, n_stages, ft.kill_by_panic);
        let attempt_started = Instant::now();
        match run_segment(
            ckpt.stages.clone(),
            data,
            cfg,
            mode,
            ckpt.next_iter..seg_end,
            &faults,
            ft.detect_timeout,
        ) {
            Ok((seg_losses, trained)) => {
                losses.extend(seg_losses);
                let ckpt_started = Instant::now();
                {
                    let _s = rannc_obs::trace::span("checkpoint", "train")
                        .arg_i("next_iter", seg_end as i64);
                    ckpt = Checkpoint {
                        next_iter: seg_end,
                        stages: trained,
                    };
                    if ft.keep_checkpoints {
                        checkpoints.push(ckpt.clone());
                    }
                }
                rannc_obs::metrics::histogram("train.checkpoint_seconds")
                    .observe(ckpt_started.elapsed().as_secs_f64());
                rannc_obs::metrics::counter("train.checkpoints").inc();
            }
            Err(err) => {
                if recoveries.len() >= ft.max_recoveries {
                    return Err(TrainError::TooManyRecoveries {
                        limit: ft.max_recoveries,
                    });
                }
                // identify which scripted failure fired; anything not in
                // the plan is a genuine error and propagates
                let (failed_stage, at_iter) = match err {
                    TrainError::StageKilled { stage, at_iter } => (stage, at_iter),
                    TrainError::StagePanicked { stage } if ft.kill_by_panic => {
                        // panics carry no iteration; attribute the first
                        // scripted kill for this stage in the segment
                        let at = remaining_failures
                            .iter()
                            .find(|&&(rank, at)| {
                                rank == stage && at >= ckpt.next_iter && at < seg_end
                            })
                            .map(|&(_, at)| at);
                        match at {
                            Some(at) => (stage, at),
                            None => return Err(TrainError::StagePanicked { stage }),
                        }
                    }
                    other => return Err(other),
                };
                let fired = remaining_failures
                    .iter()
                    .position(|&(rank, at)| rank == failed_stage && at == at_iter);
                match fired {
                    Some(i) => {
                        remaining_failures.remove(i);
                    }
                    // a kill we never scripted: surface it
                    None => {
                        return Err(TrainError::StageKilled {
                            stage: failed_stage,
                            at_iter,
                        })
                    }
                }
                let downtime = attempt_started.elapsed();
                rannc_obs::metrics::counter("train.recoveries").inc();
                rannc_obs::metrics::histogram("train.recovery_downtime_seconds")
                    .observe(downtime.as_secs_f64());
                if rannc_obs::enabled() {
                    // the detect→restore window just elapsed; record it
                    // retroactively as a slice enclosing the failed attempt
                    let dt_us = downtime.as_secs_f64() * 1e6;
                    rannc_obs::trace::record_slice(
                        rannc_obs::trace::current_tid(),
                        std::borrow::Cow::Borrowed("recovery"),
                        "train",
                        rannc_obs::now_us() - dt_us,
                        dt_us,
                        vec![
                            ("stage", rannc_obs::trace::ArgVal::Int(failed_stage as i64)),
                            ("at_iter", rannc_obs::trace::ArgVal::Int(at_iter as i64)),
                        ],
                    );
                }
                recoveries.push(RecoveryRecord {
                    failed_stage,
                    at_iter,
                    restored_from_iter: ckpt.next_iter,
                    lost_iters: at_iter - ckpt.next_iter,
                    downtime,
                });
                // restore: `ckpt` is untouched, the next loop pass
                // re-runs the segment from it with the fault consumed
            }
        }
    }

    let report = FtReport {
        losses,
        stages: ckpt.stages,
        recoveries,
        checkpoints,
        wall: started.elapsed(),
    };
    rannc_obs::metrics::gauge("train.mttr_seconds").set(report.mttr().as_secs_f64());
    Ok(report)
}

/// Resume a fault-free run from a checkpoint to `iterations` — the
/// reference the bit-identical recovery tests compare against.
pub fn resume_from(
    ckpt: &Checkpoint,
    data: &Dataset,
    cfg: &TrainConfig,
    mode: Mode,
) -> Result<(Vec<f32>, Vec<Stage>), TrainError> {
    run_segment(
        ckpt.stages.clone(),
        data,
        cfg,
        mode,
        ckpt.next_iter..cfg.iterations,
        &[],
        Duration::from_secs(10),
    )
}

fn fault_ctxs(
    plan: &FaultPlan,
    remaining_failures: &[(usize, usize)],
    n_stages: usize,
    kill_by_panic: bool,
) -> Vec<StageFaultCtx> {
    (0..n_stages)
        .map(|s| {
            let kill_at = remaining_failures
                .iter()
                .filter(|&&(rank, _)| rank == s)
                .map(|&(_, at)| at)
                .min();
            StageFaultCtx {
                kill_at,
                kill_by_panic,
                slowdown: plan.slowdown_for(s),
                link_factor: plan.link_factor(),
                comm_prob: plan.comm_error_prob(),
                seed: plan.seed(),
                ticks: rannc_cost::SimTicks::default(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::train_pipeline;
    use crate::stage::{build_mlp, split_into_stages};
    use rannc_faults::FaultEvent;

    const DIMS: [usize; 5] = [8, 32, 32, 32, 4];

    fn cfg() -> TrainConfig {
        TrainConfig {
            iterations: 20,
            batch_size: 16,
            microbatches: 4,
        }
    }

    fn stages() -> Vec<Stage> {
        split_into_stages(build_mlp(&DIMS, 5), 3, 0.01)
    }

    fn data() -> Dataset {
        Dataset::synthetic(64, 8, 4, 11)
    }

    #[test]
    fn kill_mid_run_detect_restore_finish_bit_identical() {
        // the acceptance test: a stage thread dies mid-run; the run
        // detects it, restores the checkpoint, finishes, and the losses
        // are bit-identical to the fault-free run
        let data = data();
        let (ref_losses, ref_stages) =
            train_pipeline(stages(), &data, &cfg(), Mode::Synchronous).unwrap();

        let plan = FaultPlan::new(7).with_event(FaultEvent::DeviceFail {
            rank: 1,
            at_iter: 12,
        });
        let ft = FtConfig {
            checkpoint_every: 5,
            keep_checkpoints: true,
            ..FtConfig::default()
        };
        let report =
            train_with_faults(stages(), &data, &cfg(), Mode::Synchronous, &plan, &ft).unwrap();

        assert_eq!(report.recoveries.len(), 1);
        let rec = &report.recoveries[0];
        assert_eq!(rec.failed_stage, 1);
        assert_eq!(rec.at_iter, 12);
        assert_eq!(rec.restored_from_iter, 10);
        assert_eq!(rec.lost_iters, 2);
        assert!(report.mttr() > Duration::ZERO);

        assert_eq!(
            report.losses, ref_losses,
            "recovered losses must be bit-identical"
        );
        for (a, b) in report.stages.iter().zip(&ref_stages) {
            for (la, lb) in a.layers().iter().zip(b.layers()) {
                if let (
                    crate::layer::Layer::Linear { w: wa, .. },
                    crate::layer::Layer::Linear { w: wb, .. },
                ) = (la, lb)
                {
                    assert_eq!(wa.data, wb.data, "weights diverged after recovery");
                }
            }
        }
    }

    #[test]
    fn recovered_run_matches_fault_free_restart_from_same_checkpoint() {
        // restart a fault-free run from the very checkpoint the faulty
        // run recovered from — the tails must agree bitwise
        let data = data();
        let plan = FaultPlan::new(1).with_event(FaultEvent::DeviceFail {
            rank: 2,
            at_iter: 8,
        });
        let ft = FtConfig {
            checkpoint_every: 5,
            keep_checkpoints: true,
            ..FtConfig::default()
        };
        let report =
            train_with_faults(stages(), &data, &cfg(), Mode::Synchronous, &plan, &ft).unwrap();
        let restore_iter = report.recoveries[0].restored_from_iter;
        let ckpt = report
            .checkpoints
            .iter()
            .find(|c| c.next_iter == restore_iter)
            .expect("restore checkpoint kept");
        let (tail_losses, _) = resume_from(ckpt, &data, &cfg(), Mode::Synchronous).unwrap();
        assert_eq!(
            &report.losses[restore_iter..],
            &tail_losses[..],
            "recovered tail must equal a fault-free restart from the same checkpoint"
        );
    }

    #[test]
    fn panic_kill_also_recovers() {
        let data = data();
        let (ref_losses, _) = train_pipeline(stages(), &data, &cfg(), Mode::Synchronous).unwrap();
        let plan = FaultPlan::new(3).with_event(FaultEvent::DeviceFail {
            rank: 0,
            at_iter: 7,
        });
        let ft = FtConfig {
            checkpoint_every: 4,
            kill_by_panic: true,
            ..FtConfig::default()
        };
        let report =
            train_with_faults(stages(), &data, &cfg(), Mode::Synchronous, &plan, &ft).unwrap();
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(report.recoveries[0].failed_stage, 0);
        assert_eq!(report.losses, ref_losses);
    }

    #[test]
    fn multiple_failures_all_recovered() {
        let data = data();
        let (ref_losses, _) = train_pipeline(stages(), &data, &cfg(), Mode::Synchronous).unwrap();
        let plan = FaultPlan::new(5)
            .with_event(FaultEvent::DeviceFail {
                rank: 0,
                at_iter: 3,
            })
            .with_event(FaultEvent::DeviceFail {
                rank: 2,
                at_iter: 11,
            })
            .with_event(FaultEvent::Straggler {
                rank: 1,
                slowdown: 1.5,
            });
        let ft = FtConfig {
            checkpoint_every: 5,
            ..FtConfig::default()
        };
        let report =
            train_with_faults(stages(), &data, &cfg(), Mode::Synchronous, &plan, &ft).unwrap();
        assert_eq!(report.recoveries.len(), 2);
        assert_eq!(report.losses, ref_losses);
    }

    #[test]
    fn empty_plan_equals_plain_training() {
        let data = data();
        let (ref_losses, _) = train_pipeline(stages(), &data, &cfg(), Mode::Synchronous).unwrap();
        let report = train_with_faults(
            stages(),
            &data,
            &cfg(),
            Mode::Synchronous,
            &FaultPlan::new(0),
            &FtConfig::default(),
        )
        .unwrap();
        assert!(report.recoveries.is_empty());
        assert_eq!(report.losses, ref_losses);
    }

    #[test]
    fn out_of_range_fault_plan_is_rejected() {
        let data = data();
        let plan = FaultPlan::new(0).with_event(FaultEvent::DeviceFail {
            rank: 9,
            at_iter: 1,
        });
        match train_with_faults(
            stages(),
            &data,
            &cfg(),
            Mode::Synchronous,
            &plan,
            &FtConfig::default(),
        ) {
            Err(TrainError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
