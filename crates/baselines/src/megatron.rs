//! Megatron-LM baseline: manual tensor partitioning for Transformers.
//!
//! Megatron splits every attention/FFN weight matrix across `T` devices
//! (column/row parallel), synchronizing with two activation all-reduces
//! per layer per pass. The paper's §IV observations, which this model
//! reproduces:
//!
//! * only Transformer architectures are supported (the API here only
//!   accepts [`TransformerDims`]; the figure harness prints "n/a" for
//!   ResNet);
//! * "Megatron-LM does not implement gradient accumulation" — the whole
//!   per-group batch is resident at once;
//! * "matrix multiplication in tensor partitioning distributes the
//!   computational loads, but the size of the buffer to store the results
//!   is not reduced" — layer input/output buffers stay full-size on every
//!   device, which is what limits the largest trainable model to ~1/5 of
//!   RaNNC's despite partitioned weights;
//! * partition counts are powers of two, at most the device count
//!   (§IV-B); the harness picks the best feasible one.
//!
//! The split arithmetic itself is owned by `rannc-cost`'s
//! [`tensor`](rannc_cost::tensor) module, where the unified 3D partition
//! search prices per-stage tensor parallelism through the same formulas.
//! This baseline is the `(S = 1, T = t)` sweep over that owner — a
//! special point of the search space, not a parallel code path.

use crate::BaselineOutcome;
use rannc_cost::{megatron_partition, AnalyticalCost, CostModel};
use rannc_hw::{ClusterSpec, Precision};
use rannc_pipeline::SimResult;
use rannc_profile::ProfilerOptions;

pub use rannc_cost::TransformerDims;

/// Run the Megatron-LM baseline: sweep power-of-two partition counts and
/// return the fastest feasible configuration.
///
/// Prices collectives and the optimizer step through the default
/// analytical [`CostModel`]; use [`megatron_with`] to price through a
/// specific (e.g. calibrated) model.
pub fn megatron(
    dims: &TransformerDims,
    cluster: &ClusterSpec,
    batch_size: usize,
    precision: Precision,
) -> BaselineOutcome {
    // Megatron is purely analytic — it never profiles a task graph — so
    // an empty graph backs the default cost model.
    let g = rannc_graph::TaskGraph::new("megatron-analytic");
    let cost = AnalyticalCost::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
    megatron_with(dims, &cost, cluster, batch_size, precision)
}

/// [`megatron`] priced through an explicit cost model.
pub fn megatron_with(
    dims: &TransformerDims,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    batch_size: usize,
    precision: Precision,
) -> BaselineOutcome {
    let mut best: Option<(f64, usize)> = None; // (time, t)
    let mut t = 1usize;
    while t <= cluster.total_devices() {
        if let Some((time, mem)) = megatron_partition(dims, cost, cluster, batch_size, precision, t)
        {
            if mem <= cluster.device.memory_bytes && best.map(|(bt, _)| time < bt).unwrap_or(true) {
                best = Some((time, t));
            }
        }
        t *= 2;
    }
    match best {
        Some((time, t)) => BaselineOutcome::Feasible {
            result: SimResult::new(time, batch_size, vec![time]),
            config: format!(
                "T={t} tensor-parallel x{} data-parallel",
                cluster.total_devices() / t
            ),
        },
        None => BaselineOutcome::OutOfMemory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_models::BertConfig;

    fn cluster() -> ClusterSpec {
        ClusterSpec::v100_cluster(4) // 32 GPUs, the paper's setting
    }

    /// Verbatim copy of the pre-move `eval_partition` math, kept here to
    /// pin that moving the formulas into `rannc-cost` changed nothing:
    /// [`megatron_partition`] must reproduce it bit-for-bit.
    fn eval_partition_reference(
        dims: &TransformerDims,
        cost: &dyn CostModel,
        cluster: &ClusterSpec,
        batch_size: usize,
        precision: Precision,
        t: usize,
    ) -> Option<(f64, usize)> {
        use rannc_profile::memory::{ADAM_BYTES_PER_PARAM, DEVICE_OVERHEAD_BYTES};
        const ALLOCATOR_OVERHEAD: f64 = 1.15;
        let devices = cluster.total_devices();
        if t > devices || !dims.heads.is_multiple_of(t) || !devices.is_multiple_of(t) {
            return None;
        }
        let dp = devices / t;
        if !batch_size.is_multiple_of(dp) {
            return None;
        }
        let b = batch_size / dp;
        let dev = &cluster.device;
        let act_bytes = precision.activation_bytes();
        let (h, s) = (dims.hidden, dims.seq_len);
        let flops = dims.flops_per_sample() * b as f64 / t as f64;
        let fwd = flops / dev.sustained_flops(precision);
        let compute = fwd * 4.0;
        let ar_bytes = b * s * h * act_bytes;
        let comm = 4.0
            * dims.layers as f64
            * cost.allreduce_time(cluster, ar_bytes, t, t > cluster.node.devices);
        let grad_bytes = dims.params() * 4 / t;
        let dp_allreduce = if dp > 1 {
            cost.allreduce_time(cluster, grad_bytes, dp, true)
        } else {
            0.0
        };
        let optimizer = cost.optimizer_time(dev, grad_bytes);
        let iteration = compute + comm + dp_allreduce + optimizer;
        let state_per_param = precision.weight_bytes()
            + precision.master_copy_bytes()
            + precision.grad_bytes()
            + ADAM_BYTES_PER_PARAM;
        let states = dims.params() / t * state_per_param;
        let boundaries = dims.layers * s * h * act_bytes * b;
        let full_io = 8 * s * h;
        let partitioned = (2 * s * s * dims.heads + 2 * s * dims.intermediate) / t;
        let recompute = (full_io + partitioned) * act_bytes * b;
        let logits = s * dims.vocab / t * act_bytes * b;
        let activations = ((boundaries + recompute + logits) as f64 * ALLOCATOR_OVERHEAD) as usize;
        let mem = states + activations + DEVICE_OVERHEAD_BYTES;
        Some((iteration, mem))
    }

    #[test]
    fn moved_split_math_is_bit_identical_to_the_old_owner() {
        let g = rannc_graph::TaskGraph::new("megatron-analytic");
        let cl = cluster();
        let cost = AnalyticalCost::new(&g, cl.device.clone(), ProfilerOptions::fp32());
        for dims in [
            TransformerDims::from(&BertConfig::large()),
            TransformerDims::from(&BertConfig::enlarged(2048, 48)),
            TransformerDims::from(&rannc_models::GptConfig::gpt2_small()),
        ] {
            for precision in [Precision::FP32, Precision::Mixed] {
                let mut t = 1usize;
                while t <= cl.total_devices() {
                    let moved = megatron_partition(&dims, &cost, &cl, 256, precision, t);
                    let reference = eval_partition_reference(&dims, &cost, &cl, 256, precision, t);
                    match (moved, reference) {
                        (Some((mt, mm)), Some((rt, rm))) => {
                            assert_eq!(mt.to_bits(), rt.to_bits(), "time at t={t}");
                            assert_eq!(mm, rm, "memory at t={t}");
                        }
                        (None, None) => {}
                        (m, r) => panic!("feasibility diverged at t={t}: {m:?} vs {r:?}"),
                    }
                    t *= 2;
                }
            }
        }
    }

    #[test]
    fn megatron_with_is_the_s1_sweep_over_the_owner() {
        // The baseline is a special point of the unified search: its
        // outcome must equal sweeping the T axis of the formula owner by
        // hand at S = 1 and keeping the fastest feasible point.
        let g = rannc_graph::TaskGraph::new("megatron-analytic");
        let cl = cluster();
        let cost = AnalyticalCost::new(&g, cl.device.clone(), ProfilerOptions::fp32());
        let dims = TransformerDims::from(&BertConfig::large());
        let mut best: Option<(f64, usize)> = None;
        let mut t = 1usize;
        while t <= cl.total_devices() {
            if let Some((time, mem)) =
                megatron_partition(&dims, &cost, &cl, 256, Precision::FP32, t)
            {
                if mem <= cl.device.memory_bytes && best.map(|(bt, _)| time < bt).unwrap_or(true) {
                    best = Some((time, t));
                }
            }
            t *= 2;
        }
        let (time, t) = best.expect("bert-large must be feasible at 32 GPUs");
        match megatron(&dims, &cl, 256, Precision::FP32) {
            BaselineOutcome::Feasible { result, config } => {
                assert_eq!(result.iteration_time.to_bits(), time.to_bits());
                assert!(config.starts_with(&format!("T={t} ")), "config = {config}");
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn params_match_models_crate_roughly() {
        let cfg = BertConfig::large();
        let dims = TransformerDims::from(&cfg);
        let ours = dims.params() as f64;
        let exact = cfg.param_count() as f64;
        assert!(
            (ours / exact - 1.0).abs() < 0.02,
            "ours={ours} exact={exact}"
        );
    }

    #[test]
    fn bert_large_feasible_at_32_gpus() {
        let dims = TransformerDims::from(&BertConfig::large());
        let out = megatron(&dims, &cluster(), 256, Precision::FP32);
        assert!(out.throughput().is_some());
    }

    #[test]
    fn oom_beyond_a_few_billion_params() {
        // Fig. 4 narrative: Megatron-LM fails for ~5x smaller models than
        // RaNNC's 12.9B ceiling, i.e. somewhere below ~3B.
        let dims = TransformerDims::from(&BertConfig::enlarged(2048, 96)); // 4.9B
        let out = megatron(&dims, &cluster(), 256, Precision::FP32);
        assert!(
            matches!(out, BaselineOutcome::OutOfMemory),
            "4.9B params should OOM under tensor partitioning"
        );
    }

    #[test]
    fn trains_more_than_data_parallel_scale() {
        // Megatron should still handle ~2.5B (h=2048, 48 layers)
        let dims = TransformerDims::from(&BertConfig::enlarged(2048, 48));
        let out = megatron(&dims, &cluster(), 256, Precision::FP32);
        assert!(out.throughput().is_some(), "2.5B should be trainable");
    }

    #[test]
    fn mixed_precision_is_faster() {
        let dims = TransformerDims::from(&BertConfig::large());
        let f = megatron(&dims, &cluster(), 256, Precision::FP32)
            .throughput()
            .unwrap();
        let m = megatron(&dims, &cluster(), 256, Precision::Mixed)
            .throughput()
            .unwrap();
        assert!(m > f, "mixed {m} should beat fp32 {f}");
    }

    #[test]
    fn larger_t_needed_for_larger_models() {
        // a model whose states exceed one device must use t > 1
        let dims = TransformerDims::from(&BertConfig::enlarged(2048, 48)); // 2.5B
        let out = megatron(&dims, &cluster(), 256, Precision::FP32);
        if let BaselineOutcome::Feasible { config, .. } = out {
            let t: usize = config
                .trim_start_matches("T=")
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap();
            // 2.5B params × 16 B/param ≈ 40 GB of states: at least two
            // shards are needed to fit a 32 GB device.
            assert!(t >= 2, "config = {config}");
        } else {
            panic!("expected feasible");
        }
    }
}

#[cfg(test)]
mod gpt_tests {
    use super::*;
    use rannc_models::GptConfig;

    #[test]
    fn gpt_dims_conversion() {
        let cfg = GptConfig::gpt2_small();
        let dims = TransformerDims::from(&cfg);
        assert_eq!(dims.hidden, 768);
        assert_eq!(dims.intermediate, 3072);
        assert_eq!(dims.seq_len, 1024);
    }

    #[test]
    fn megatron_trains_gpt2_small() {
        let dims = TransformerDims::from(&GptConfig::gpt2_small());
        let out = megatron(&dims, &ClusterSpec::v100_cluster(1), 64, Precision::FP32);
        assert!(out.throughput().is_some());
    }

    #[test]
    fn t_must_divide_heads() {
        // 12 heads: T=8 illegal, so the best feasible T is in {1,2,4}
        let dims = TransformerDims::from(&GptConfig::gpt2_small());
        let out = megatron(&dims, &ClusterSpec::v100_cluster(1), 64, Precision::FP32);
        if let BaselineOutcome::Feasible { config, .. } = out {
            let t: usize = config
                .trim_start_matches("T=")
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!([1, 2, 4].contains(&t), "T = {t} does not divide 12 heads");
        } else {
            panic!("expected feasible");
        }
    }
}
