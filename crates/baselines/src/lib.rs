//! # rannc-baselines
//!
//! The frameworks the paper compares RaNNC against (§IV-A):
//!
//! * **Megatron-LM** ([`mod@megatron`]) — manual *tensor* partitioning for
//!   Transformer models only; no gradient accumulation; full-size result
//!   buffers (the two properties behind its OOMs in Fig. 4).
//! * **GPipe-Hybrid** ([`gpipe`]) — manual *graph* partitioning at layer
//!   granularity with hybrid parallelism: uniform layer counts per stage,
//!   the same replica count for every stage, stage counts from
//!   {2, 4, 8, 16}, synchronous fill–drain schedule.
//! * **GPipe-Model** ([`gpipe`]) — torchgpipe: model parallelism on a
//!   single node (≤ 8 stages), micro-batch count fixed at 64 (§IV-B).
//! * **PipeDream-2BW** ([`pipedream`]) — same layer-uniform partitioner,
//!   asynchronous 2BW schedule (no flush; parameter staleness).
//! * **Data parallelism** — re-exported from `rannc_pipeline`
//!   ([`rannc_pipeline::dataparallel`]).
//!
//! All outcomes are reported through [`BaselineOutcome`], which carries
//! either a simulated iteration result or the reason training is
//! impossible (OOM / unsupported architecture) so the figure harnesses can
//! print the paper's missing bars faithfully.

pub mod gpipe;
pub mod layers;
pub mod megatron;
pub mod pipedream;

pub use gpipe::{gpipe_hybrid, gpipe_model};
pub use layers::{layer_groups, LayerGroup};
pub use megatron::{megatron, megatron_with, TransformerDims};
pub use pipedream::pipedream_2bw;
pub use rannc_pipeline::dataparallel::{simulate_data_parallel, DataParallelOutcome};

use rannc_pipeline::SimResult;

/// What a baseline run reports.
#[derive(Debug, Clone)]
pub enum BaselineOutcome {
    /// Training is possible; carries the simulated result and a short
    /// human-readable description of the chosen configuration.
    Feasible {
        /// Simulated iteration result.
        result: SimResult,
        /// Description of the winning configuration (stage count etc.).
        config: String,
    },
    /// The model cannot be trained within device memory.
    OutOfMemory,
    /// The framework does not support this model architecture (e.g.
    /// Megatron-LM on ResNet).
    Unsupported,
}

impl BaselineOutcome {
    /// The simulated result, if feasible.
    pub fn ok(&self) -> Option<&SimResult> {
        match self {
            BaselineOutcome::Feasible { result, .. } => Some(result),
            _ => None,
        }
    }

    /// Samples/s, or `None` when the framework cannot train the model.
    pub fn throughput(&self) -> Option<f64> {
        self.ok().map(|r| r.throughput)
    }
}
