//! PipeDream-2BW baseline: GPipe-Hybrid's layer-uniform partitioner with
//! the asynchronous 2BW schedule.
//!
//! Paper §IV-B: "Since PipeDream-2BW partitions a model in the same way as
//! GPipe-Hybrid, RaNNC can also achieve a better balance of stages than
//! PipeDream-2BW. PipeDream-2BW slightly outperformed RaNNC in several
//! settings, but it uses asynchronous pipeline parallelism and can cause
//! parameter staleness issues."
//!
//! Memory model: 2BW keeps **two weight versions** (double buffering) but
//! bounds in-flight activations by the pipeline depth instead of the
//! micro-batch count, and uses activation recomputation — so it trains
//! everything GPipe-Hybrid can, sometimes more.

use crate::gpipe::{build_spec, UniformSpec};
use crate::layers::{layer_groups, uniform_layer_split};
use crate::BaselineOutcome;
use rannc_cost::CostModel;
use rannc_graph::TaskGraph;
use rannc_hw::ClusterSpec;
use rannc_pipeline::async2bw::simulate_async_2bw;

/// Run the PipeDream-2BW baseline: sweep stage counts {2, 4, 8, 16} and
/// micro-batch counts, simulate the async 2BW steady state, return best.
pub fn pipedream_2bw(
    g: &TaskGraph,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    batch_size: usize,
) -> BaselineOutcome {
    let groups = layer_groups(g);
    let layers = groups
        .iter()
        .filter(|l| l.scope.contains("layer") || l.scope.contains("block"))
        .count()
        .max(1);
    let devices = cluster.total_devices();
    let mut best: Option<(f64, rannc_pipeline::SimResult, String)> = None;
    let mut any_candidate = false;

    for stages in [2usize, 4, 8, 16] {
        if stages > groups.len() || layers % stages != 0 || !devices.is_multiple_of(stages) {
            continue;
        }
        let replicas = devices / stages;
        let stage_sets = uniform_layer_split(&groups, stages, g.num_tasks());
        let mut mb = 1usize;
        while mb * replicas <= batch_size {
            any_candidate = true;
            // in-flight activations bounded by pipeline depth; one extra
            // weight version resident
            let u = UniformSpec {
                replicas,
                microbatches: mb,
                batch_size,
                inflight_override: Some(stages.min(mb)),
                extra_weight_copies: 1,
            };
            if let Some(spec) = build_spec(cost, cluster, &stage_sets, &u) {
                let result = simulate_async_2bw(&spec);
                if best
                    .as_ref()
                    .map(|(t, _, _)| result.iteration_time < *t)
                    .unwrap_or(true)
                {
                    best = Some((
                        result.iteration_time,
                        result,
                        format!("S={stages} x{replicas} replicas, MB={mb} (async 2BW)"),
                    ));
                }
            }
            mb *= 2;
        }
    }
    match best {
        Some((_, result, config)) => BaselineOutcome::Feasible { result, config },
        None if any_candidate => BaselineOutcome::OutOfMemory,
        None => BaselineOutcome::Unsupported,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpipe::gpipe_hybrid;
    use rannc_hw::DeviceSpec;
    use rannc_models::{bert_graph, BertConfig};
    use rannc_profile::{Profiler, ProfilerOptions};

    #[test]
    fn pipedream_beats_gpipe_hybrid_on_same_partition() {
        // no flush -> higher utilization than the sync schedule
        let cfg = BertConfig {
            layers: 4,
            ..BertConfig::tiny()
        };
        let g = bert_graph(&cfg);
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let cluster = ClusterSpec::v100_cluster(1);
        let pd = pipedream_2bw(&g, &profiler, &cluster, 64)
            .throughput()
            .expect("feasible");
        let gp = gpipe_hybrid(&g, &profiler, &cluster, 64)
            .throughput()
            .expect("feasible");
        assert!(
            pd >= gp * 0.95,
            "PipeDream-2BW ({pd:.1}) should be at least on par with GPipe-Hybrid ({gp:.1})"
        );
    }
}
