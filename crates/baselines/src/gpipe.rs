//! GPipe baselines: GPipe-Hybrid (layer-uniform stages + hybrid
//! parallelism) and GPipe-Model (torchgpipe: single-node model
//! parallelism).
//!
//! Paper §IV-B, BERT experiments: "For these frameworks, the total number
//! of replicas of all stages must match the number of GPUs and the number
//! of layers must be divisible by the number of stages. In addition, they
//! do not work with a single stage. Thus, we tried 2, 4, 8, and 16 as the
//! number of stages and chose the best result."
//!
//! ResNet experiments: "Since GPipe-Model can use only GPUs on a single
//! node, the maximum number of stages is eight … we tried to partition the
//! models into eight stages in all settings so that the computation times
//! would be as balanced as possible. We also set the number of microbatches
//! … to 64."

use crate::layers::{layer_groups, uniform_layer_split, LayerGroup};
use crate::BaselineOutcome;
use rannc_cost::CostModel;
use rannc_graph::{TaskGraph, TaskSet};
use rannc_hw::ClusterSpec;
use rannc_pipeline::{simulate_sync, PipelineSpec, StageSpec, SyncSchedule};

/// Knobs of a uniform (equal-replica) pipeline configuration.
pub(crate) struct UniformSpec {
    /// Replicas per stage (all stages equal — the GPipe constraint).
    pub replicas: usize,
    /// Micro-batch count.
    pub microbatches: usize,
    /// Global batch size.
    pub batch_size: usize,
    /// Override the in-flight micro-batch count for memory estimation
    /// (PipeDream-2BW bounds it by pipeline depth; `None` = `microbatches`).
    pub inflight_override: Option<usize>,
    /// Extra resident weight versions (2BW double buffering).
    pub extra_weight_copies: usize,
}

/// Build the pipeline spec for a set of equally-replicated stages, or
/// `None` when some stage exceeds device memory.
pub(crate) fn build_spec(
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    stage_sets: &[TaskSet],
    u: &UniformSpec,
) -> Option<PipelineSpec> {
    let UniformSpec {
        replicas,
        microbatches,
        batch_size,
        inflight_override,
        extra_weight_copies,
    } = *u;
    let micro = batch_size / replicas.max(1) / microbatches.max(1);
    if micro == 0 {
        return None;
    }
    let ckpt = stage_sets.len() > 1;
    let inflight = inflight_override.unwrap_or(microbatches);
    let mut stages = Vec::with_capacity(stage_sets.len());
    for (i, set) in stage_sets.iter().enumerate() {
        let prof = cost.stage_cost(set, micro, inflight, ckpt);
        // extra weight versions (PipeDream-2BW double buffering)
        let mem = prof.mem_bytes
            + extra_weight_copies * prof.param_elems * cost.options().precision.weight_bytes();
        if mem > cluster.device.memory_bytes {
            return None;
        }
        let comm_to_next_bytes = if i + 1 < stage_sets.len() {
            cost.comm_bytes(set, &stage_sets[i + 1], micro)
        } else {
            0
        };
        stages.push(StageSpec {
            fwd_time: prof.fwd_time,
            bwd_time: prof.bwd_time,
            comm_to_next_bytes,
            grad_bytes: prof.param_elems * 4,
            replicas,
            tensor_parallel: 1,
        });
    }
    Some(PipelineSpec {
        stages,
        microbatches,
        replica_factor: 1,
        batch_size,
        link: cluster.planning_link(),
        cluster: cluster.clone(),
        cost: cost.factors(),
    })
}

/// Number of *splittable* layers: GPipe counts the repeated encoder
/// blocks; embeddings merge into the first stage and heads into the last.
fn splittable_layers(groups: &[LayerGroup]) -> usize {
    groups
        .iter()
        .filter(|l| l.scope.contains("layer") || l.scope.contains("block"))
        .count()
        .max(1)
}

/// GPipe-Hybrid: sweep stage counts {2, 4, 8, 16} (layer-divisible only),
/// equal replicas per stage, micro-batch counts in powers of two; return
/// the best feasible configuration.
pub fn gpipe_hybrid(
    g: &TaskGraph,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    batch_size: usize,
) -> BaselineOutcome {
    let groups = layer_groups(g);
    let layers = splittable_layers(&groups);
    let devices = cluster.total_devices();
    let mut best: Option<(f64, rannc_pipeline::SimResult, String)> = None;
    let mut any_candidate = false;

    for stages in [2usize, 4, 8, 16] {
        if stages > groups.len()
            || !layers.is_multiple_of(stages)
            || !devices.is_multiple_of(stages)
        {
            continue;
        }
        let replicas = devices / stages;
        let stage_sets = uniform_layer_split(&groups, stages, g.num_tasks());
        let mut mb = 1usize;
        while mb * replicas <= batch_size {
            any_candidate = true;
            let u = UniformSpec {
                replicas,
                microbatches: mb,
                batch_size,
                inflight_override: None,
                extra_weight_copies: 0,
            };
            if let Some(spec) = build_spec(cost, cluster, &stage_sets, &u) {
                let result = simulate_sync(&spec, SyncSchedule::FillDrain, false).result;
                if best
                    .as_ref()
                    .map(|(t, _, _)| result.iteration_time < *t)
                    .unwrap_or(true)
                {
                    best = Some((
                        result.iteration_time,
                        result,
                        format!("S={stages} x{replicas} replicas, MB={mb}"),
                    ));
                }
            }
            mb *= 2;
        }
    }
    match best {
        Some((_, result, config)) => BaselineOutcome::Feasible { result, config },
        None if any_candidate => BaselineOutcome::OutOfMemory,
        None => BaselineOutcome::Unsupported,
    }
}

/// GPipe-Model (torchgpipe): one node, `stages` ≤ devices-per-node stages
/// balanced greedily over whole layers, no replication, fixed MB = 64.
pub fn gpipe_model(
    g: &TaskGraph,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    batch_size: usize,
) -> BaselineOutcome {
    let stages = cluster.node.devices.min(8);
    let groups = layer_groups(g);
    if groups.len() < stages {
        return BaselineOutcome::Unsupported;
    }
    // manual balancing: contiguous split minimizing the max stage time via
    // binary search over per-layer profiled times (what a careful user
    // would do by hand, still at whole-layer granularity)
    let times: Vec<f64> = groups
        .iter()
        .map(|l| {
            let p = cost.stage_cost(&l.set, 1, 1, true);
            p.fwd_time + p.bwd_time
        })
        .collect();
    let splits = balanced_contiguous_split(&times, stages);
    let mut stage_sets = Vec::with_capacity(stages);
    let mut start = 0usize;
    for &end in &splits {
        let mut set = TaskSet::new(g.num_tasks());
        for l in &groups[start..end] {
            set.union_with(&l.set);
        }
        stage_sets.push(set);
        start = end;
    }

    // single-node cluster view for this baseline
    let one_node = ClusterSpec {
        nodes: 1,
        ..cluster.clone()
    };
    let mb = 64usize.min(batch_size.max(1));
    let u = UniformSpec {
        replicas: 1,
        microbatches: mb,
        batch_size,
        inflight_override: None,
        extra_weight_copies: 0,
    };
    match build_spec(cost, &one_node, &stage_sets, &u) {
        Some(spec) => {
            let result = simulate_sync(&spec, SyncSchedule::FillDrain, false).result;
            BaselineOutcome::Feasible {
                result,
                config: format!("S={stages} model-parallel, MB={mb}"),
            }
        }
        None => BaselineOutcome::OutOfMemory,
    }
}

/// Split `times` into `k` contiguous runs minimizing the maximum run sum
/// (classic linear-partition via parametric search).
fn balanced_contiguous_split(times: &[f64], k: usize) -> Vec<usize> {
    let k = k.min(times.len());
    let total: f64 = times.iter().sum();
    let maxt = times.iter().cloned().fold(0.0, f64::max);
    let (mut lo, mut hi) = (maxt, total);
    let feasible = |cap: f64| -> Option<Vec<usize>> {
        let mut cuts = Vec::with_capacity(k);
        let mut acc = 0.0;
        for (i, &t) in times.iter().enumerate() {
            if acc + t > cap + 1e-15 {
                cuts.push(i);
                acc = t;
                if cuts.len() == k {
                    return None;
                }
            } else {
                acc += t;
            }
        }
        cuts.push(times.len());
        (cuts.len() <= k).then_some(cuts)
    };
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let mut cuts = feasible(hi).expect("hi is feasible by construction");
    // pad to exactly k runs if the greedy used fewer
    while cuts.len() < k {
        // split the longest run containing > 1 layer
        let mut start = 0usize;
        let mut best: Option<(f64, usize, usize)> = None;
        for (ci, &end) in cuts.iter().enumerate() {
            if end - start > 1 {
                let sum: f64 = times[start..end].iter().sum();
                if best.map(|(b, _, _)| sum > b).unwrap_or(true) {
                    best = Some((sum, ci, start));
                }
            }
            start = end;
        }
        let Some((_, ci, start)) = best else { break };
        let end = cuts[ci];
        cuts.insert(ci, (start + end) / 2);
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_hw::DeviceSpec;
    use rannc_models::{bert_graph, resnet_graph, BertConfig, ResNetConfig};
    use rannc_profile::{Profiler, ProfilerOptions};

    #[test]
    fn balanced_split_basics() {
        let cuts = balanced_contiguous_split(&[1.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(cuts, vec![2, 4]);
        let cuts = balanced_contiguous_split(&[5.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(cuts, vec![1, 4]);
    }

    #[test]
    fn gpipe_hybrid_on_bert() {
        let cfg = BertConfig {
            layers: 4,
            ..BertConfig::tiny()
        };
        let g = bert_graph(&cfg);
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let cluster = ClusterSpec::v100_cluster(1);
        let out = gpipe_hybrid(&g, &profiler, &cluster, 64);
        let r = out.ok().expect("feasible");
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn gpipe_model_on_resnet() {
        let g = resnet_graph(&ResNetConfig::tiny());
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let cluster = ClusterSpec::v100_cluster(1);
        let out = gpipe_model(&g, &profiler, &cluster, 128);
        let r = out.ok().expect("feasible");
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn gpipe_is_the_t1_restriction_of_the_unified_model() {
        // GPipe has no intra-op axis: every stage spec it builds carries
        // tensor_parallel = 1, so the baseline is exactly the unified
        // (S, MB, T) pipeline model pinned at T = 1 — pinning the degree
        // explicitly changes nothing, bit for bit.
        let cfg = BertConfig {
            layers: 4,
            ..BertConfig::tiny()
        };
        let g = bert_graph(&cfg);
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let cluster = ClusterSpec::v100_cluster(1);
        let groups = layer_groups(&g);
        let stage_sets = uniform_layer_split(&groups, 2, g.num_tasks());
        let u = UniformSpec {
            replicas: 4,
            microbatches: 4,
            batch_size: 64,
            inflight_override: None,
            extra_weight_copies: 0,
        };
        let spec = build_spec(&profiler, &cluster, &stage_sets, &u).expect("feasible");
        assert!(spec.stages.iter().all(|s| s.tensor_parallel == 1));
        let base = simulate_sync(&spec, SyncSchedule::FillDrain, false).result;
        let mut pinned = spec.clone();
        for st in &mut pinned.stages {
            st.tensor_parallel = 1;
        }
        let re = simulate_sync(&pinned, SyncSchedule::FillDrain, false).result;
        assert_eq!(base.iteration_time.to_bits(), re.iteration_time.to_bits());
        assert_eq!(
            spec.allreduce_time().to_bits(),
            pinned.allreduce_time().to_bits()
        );
    }

    #[test]
    fn gpipe_hybrid_oom_on_small_memory() {
        let cfg = BertConfig {
            layers: 4,
            ..BertConfig::tiny()
        };
        let g = bert_graph(&cfg);
        let dev = DeviceSpec::v100_32gb().with_memory(1 << 20);
        let profiler = Profiler::new(&g, dev.clone(), ProfilerOptions::fp32());
        let cluster = ClusterSpec {
            device: dev,
            ..ClusterSpec::v100_cluster(1)
        };
        assert!(matches!(
            gpipe_hybrid(&g, &profiler, &cluster, 64),
            BaselineOutcome::OutOfMemory
        ));
    }
}
