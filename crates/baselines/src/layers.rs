//! Layer-granularity views of a task graph.
//!
//! The manual baselines cannot see individual tasks — their users declare
//! *layers* (the paper's coarse "blocks given by users", §II-C) and the
//! frameworks combine whole layers into stages. This module groups a
//! graph's tasks by the builder-assigned scope tag, in topological order,
//! preserving the imbalance the paper highlights (e.g. the BERT head's
//! vocabulary matmul living inside the last layer group).

use rannc_graph::{traverse, TaskGraph, TaskSet};

/// One user-declared layer: its scope name and task set.
#[derive(Debug, Clone)]
pub struct LayerGroup {
    /// Scope tag, e.g. `"encoder.layer3"`.
    pub scope: String,
    /// Tasks of the layer.
    pub set: TaskSet,
}

/// Group tasks by scope, ordered by first appearance along the
/// topological order. Tasks with an empty scope join the preceding group
/// (or the first group if none precedes).
pub fn layer_groups(g: &TaskGraph) -> Vec<LayerGroup> {
    let n = g.num_tasks();
    let order = traverse::topo_order(g);
    let mut groups: Vec<LayerGroup> = Vec::new();
    let mut index_of: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for &t in &order {
        let scope = g.task(t).scope.as_str();
        let gi = if scope.is_empty() {
            if groups.is_empty() {
                groups.push(LayerGroup {
                    scope: String::new(),
                    set: TaskSet::new(n),
                });
            }
            groups.len() - 1
        } else {
            *index_of.entry(scope.to_string()).or_insert_with(|| {
                groups.push(LayerGroup {
                    scope: scope.to_string(),
                    set: TaskSet::new(n),
                });
                groups.len() - 1
            })
        };
        groups[gi].set.insert(t);
    }
    // Order by the *latest* task of each group: constant tasks (e.g. the
    // LM head's weight transpose) have no predecessors and float to the
    // front of Kahn order, so first-appearance ordering would misplace
    // the head group. The deepest task of each layer orders them as the
    // model executes.
    let pos = traverse::topo_positions(g);
    groups.sort_by_key(|l| l.set.iter().map(|t| pos[t.index()]).max().unwrap_or(0));
    groups
}

/// Split `groups` into `stages` consecutive runs with (as close as
/// possible) equal *layer counts* — the GPipe/PipeDream rule ("the number
/// of layers must be divisible by the number of stages", §IV-B). The
/// first/last run absorbs the remainder groups (embeddings/heads).
pub fn uniform_layer_split(groups: &[LayerGroup], stages: usize, universe: usize) -> Vec<TaskSet> {
    assert!(stages >= 1 && stages <= groups.len());
    let per = groups.len() / stages;
    let rem = groups.len() % stages;
    let mut out = Vec::with_capacity(stages);
    let mut i = 0usize;
    for s in 0..stages {
        let take = per + usize::from(s < rem);
        let mut set = TaskSet::new(universe);
        for group in &groups[i..i + take] {
            set.union_with(&group.set);
        }
        i += take;
        out.push(set);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_models::{bert_graph, mlp_graph, BertConfig, MlpConfig};

    #[test]
    fn bert_layers_are_grouped() {
        let cfg = BertConfig::tiny(); // 2 encoder layers
        let g = bert_graph(&cfg);
        let groups = layer_groups(&g);
        // embeddings + 2 layers + head
        assert_eq!(
            groups.len(),
            4,
            "{:?}",
            groups.iter().map(|l| &l.scope).collect::<Vec<_>>()
        );
        assert_eq!(groups[0].scope, "embeddings");
        assert_eq!(groups[1].scope, "encoder.layer0");
        assert_eq!(groups[3].scope, "head");
        // cover all tasks
        let total: usize = groups.iter().map(|l| l.set.len()).sum();
        assert_eq!(total, g.num_tasks());
    }

    #[test]
    fn uniform_split_counts() {
        let g = mlp_graph(&MlpConfig::deep(16, 16, 7, 4)); // 7 fc + head = 8 groups
        let groups = layer_groups(&g);
        assert_eq!(groups.len(), 8);
        let stages = uniform_layer_split(&groups, 4, g.num_tasks());
        assert_eq!(stages.len(), 4);
        let total: usize = stages.iter().map(|s| s.len()).sum();
        assert_eq!(total, g.num_tasks());
    }

    #[test]
    fn head_lives_in_last_stage() {
        // the paper's §II-C observation: the huge vocab matmul is stuck in
        // the last stage under layer-granular splitting
        let g = bert_graph(&BertConfig::tiny());
        let groups = layer_groups(&g);
        let stages = uniform_layer_split(&groups, 2, g.num_tasks());
        let head = groups.last().unwrap();
        assert!(head.set.is_subset(stages.last().unwrap()));
    }
}
