//! `rannc-plan` — partition a model onto a cluster from the command line.
//!
//! ```sh
//! rannc-plan --model bert --hidden 1024 --layers 24 --nodes 4 --batch 256
//! rannc-plan --model resnet --layers 152 --width-factor 8 --nodes 1 --batch 128
//! rannc-plan --model t5 --hidden 768 --layers 12 --nodes 2 --batch 64 --timeline
//! rannc-plan --model gpt --hidden 768 --layers 12 --nodes 1 --batch 32 --mixed
//! ```
//!
//! Prints the partition plan, the simulated training iteration, and
//! optionally an ASCII timeline (`--timeline`) or a Graphviz dump of the
//! partitioned graph (`--dot FILE`).

mod args;

use args::{Args, ModelKind};
use rannc::pipeline::viz::render_timeline;
use rannc::prelude::*;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            std::process::exit(2);
        }
    };
    if args.help {
        println!("{}", args::USAGE);
        return;
    }

    let graph = build_graph(&args);
    let mut cluster = ClusterSpec::v100_cluster(args.nodes);
    cluster.node.devices = args.gpus_per_node;
    if let Some(gib) = args.memory_gib {
        cluster.device = cluster.device.with_memory(gib << 30);
    }
    eprintln!(
        "model {} | {} tasks | {:.2}M params | cluster {}x{} GPUs ({} GiB each)",
        graph.name,
        graph.num_tasks(),
        graph.param_count() as f64 / 1e6,
        cluster.nodes,
        cluster.node.devices,
        cluster.device.memory_bytes >> 30,
    );

    let precision = if args.mixed {
        Precision::Mixed
    } else {
        Precision::FP32
    };
    let config = PartitionConfig::new(args.batch)
        .with_k(args.k)
        .with_precision(precision)
        .with_noise(args.noise, 42);

    let plan = if let Some(path) = &args.load {
        // deployment-cache path: reuse a previously saved plan
        match rannc::core::load_plan(std::path::Path::new(path)) {
            Ok(Ok(p)) => {
                eprintln!("loaded cached plan from {path}");
                p
            }
            Ok(Err(e)) => {
                eprintln!("invalid plan file {path}: {e}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match Rannc::new(config).partition(&graph, &cluster) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("partitioning failed: {e}");
                std::process::exit(1);
            }
        }
    };
    if let Some(path) = &args.save {
        if let Err(e) = rannc::core::save_plan(&plan, std::path::Path::new(path)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("saved plan to {path}");
    }
    println!("{}", plan.summary());

    let opts = if args.mixed {
        ProfilerOptions::mixed()
    } else {
        ProfilerOptions::fp32()
    };
    let profiler = Profiler::new(&graph, cluster.device.clone(), opts);
    let spec = rannc::pipeline::spec_from_plan(&plan, &profiler, &cluster);
    let out = simulate_sync(&spec, SyncSchedule::FillDrain, args.timeline);
    println!(
        "simulated iteration: {:.2} ms | throughput {:.1} samples/s | utilization {:.0}%",
        out.result.iteration_time * 1e3,
        out.result.throughput,
        out.result.utilization * 100.0
    );
    if let Some(tl) = out.timeline {
        println!("\n{}", render_timeline(&tl, plan.stages.len(), 100));
    }
    if let Some(path) = &args.dot {
        let sets: Vec<TaskSet> = plan.stages.iter().map(|s| s.set.clone()).collect();
        let dot = rannc::graph::dot::to_dot(&graph, Some(&sets));
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote partitioned graph to {path}");
    }
}

fn build_graph(args: &Args) -> TaskGraph {
    match args.model {
        ModelKind::Bert => bert_graph(&BertConfig::enlarged(args.hidden, args.layers)),
        ModelKind::Gpt => gpt_graph(&GptConfig::enlarged(args.hidden, args.layers)),
        ModelKind::T5 => {
            let mut cfg = T5Config::base();
            cfg.hidden = args.hidden;
            cfg.heads = (args.hidden / 64).max(1);
            cfg.kv_inner = args.hidden;
            cfg.intermediate = 4 * args.hidden;
            cfg.encoder_layers = args.layers;
            cfg.decoder_layers = args.layers;
            t5_graph(&cfg)
        }
        ModelKind::Resnet => {
            let depth = match args.layers {
                50 => ResNetDepth::R50,
                101 => ResNetDepth::R101,
                152 => ResNetDepth::R152,
                other => {
                    eprintln!("resnet supports --layers 50|101|152, got {other}");
                    std::process::exit(2);
                }
            };
            resnet_graph(&ResNetConfig::new(depth, args.width_factor))
        }
        ModelKind::Mlp => mlp_graph(&MlpConfig::deep(args.hidden, args.hidden, args.layers, 10)),
    }
}
