//! `rannc-plan` — partition a model onto a cluster from the command line.
//!
//! ```sh
//! rannc-plan --model bert --hidden 1024 --layers 24 --nodes 4 --batch 256
//! rannc-plan --model resnet --layers 152 --width-factor 8 --nodes 1 --batch 128
//! rannc-plan --model t5 --hidden 768 --layers 12 --nodes 2 --batch 64 --timeline
//! rannc-plan --model gpt --hidden 768 --layers 12 --nodes 1 --batch 32 --mixed
//! ```
//!
//! Prints the partition plan, the simulated training iteration, and
//! optionally an ASCII timeline (`--timeline`) or a Graphviz dump of the
//! partitioned graph (`--dot FILE`).
//!
//! The `faults` subcommand partitions the model and then runs a
//! fault-injected training campaign under both recovery policies:
//!
//! ```sh
//! rannc-plan faults --model mlp --hidden 64 --layers 8 --nodes 2 \
//!     --batch 32 --k 8 --fail 0@50000
//! ```
//!
//! The `verify` subcommand statically checks the task graph, the
//! partition plan (fresh, or a deployment file via `--load`) and both
//! synchronous schedules, printing `RV0xx` diagnostics and exiting
//! nonzero on any error:
//!
//! ```sh
//! rannc-plan verify --model bert --nodes 4 --batch 256
//! rannc-plan verify --model bert --nodes 4 --load plan.rncp
//! ```

mod args;

use args::{Args, ChurnPolicyArg, Command, CostModelArg, ModelKind};
use rannc::faults::ClusterEventTrace;
use rannc::pipeline::viz::render_timeline;
use rannc::pipeline::{ChurnPolicy, ChurnReport, ChurnSimConfig, FaultSimReport};
use rannc::prelude::*;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            std::process::exit(2);
        }
    };
    if args.help {
        println!("{}", args::USAGE);
        return;
    }
    if args.command == Command::ObsCheck {
        run_obs_check(&args);
        return;
    }
    if args.command == Command::Explain {
        run_explain(&args);
        return;
    }
    // tracing is strictly opt-in: spans allocate nothing until enabled
    if args.trace_out.is_some() {
        rannc::obs::set_enabled(true);
    }
    // …and so is the plan flight recorder
    if args.explain_out.is_some() {
        rannc::obs::recorder::set_enabled(true);
    }

    if args.threads > 0 {
        rannc::core::par::set_threads(args.threads);
    }
    let cost_spec = match &args.cost_model {
        CostModelArg::Analytical => CostModelSpec::Analytical,
        CostModelArg::Calibrated(path) => match Calibration::load(std::path::Path::new(path)) {
            Ok(cal) => {
                eprintln!("loaded cost calibration from {path}");
                CostModelSpec::Calibrated(cal)
            }
            Err(e) => {
                eprintln!("cannot load calibration {path}: {e}");
                std::process::exit(1);
            }
        },
    };
    let graph = build_graph(&args);
    let mut cluster = ClusterSpec::v100_cluster(args.nodes);
    cluster.node.devices = args.gpus_per_node;
    if let Some(gib) = args.memory_gib {
        cluster.device = cluster.device.with_memory(gib << 30);
    }
    eprintln!(
        "model {} | {} tasks | {:.2}M params | cluster {}x{} GPUs ({} GiB each)",
        graph.name,
        graph.num_tasks(),
        graph.param_count() as f64 / 1e6,
        cluster.nodes,
        cluster.node.devices,
        cluster.device.memory_bytes >> 30,
    );

    let precision = if args.mixed {
        Precision::Mixed
    } else {
        Precision::FP32
    };
    let config = PartitionConfig::new(args.batch)
        .with_k(args.k)
        .with_precision(precision)
        .with_noise(args.noise, 42)
        // the verify subcommand reports the full diagnostic set itself
        // rather than letting the partitioner's post-pass abort early
        .with_verify(if args.command == Command::Verify {
            VerifyMode::Off
        } else {
            VerifyMode::Fail
        })
        .with_cost_model(cost_spec.clone())
        .with_tp_max(args.tp_max);

    let rannc = Rannc::new(config);
    let mut plan = if let Some(path) = &args.load {
        // deployment-cache path: reuse a previously saved plan
        match rannc::core::load_plan(std::path::Path::new(path)) {
            Ok(p) => {
                eprintln!("loaded cached plan from {path}");
                p
            }
            Err(e) => {
                eprintln!("invalid plan file {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let started = std::time::Instant::now();
        match rannc.partition_with_stats(&graph, &cluster) {
            Ok((p, _stats)) => {
                if args.planner_stats {
                    // sourced from the metrics registry (same numbers as
                    // the per-run snapshot in a single-run process)
                    eprintln!(
                        "{}\n  wall clock: {:.3} s",
                        rannc::core::PlannerStats::render_registry(),
                        started.elapsed().as_secs_f64()
                    );
                }
                p
            }
            Err(e) => {
                eprintln!("partitioning failed: {e}");
                std::process::exit(1);
            }
        }
    };
    if let Some(path) = &args.save {
        if let Err(e) = rannc::core::save_plan(&plan, std::path::Path::new(path)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("saved plan to {path}");
    }
    if let Some(rank) = args.lose_device {
        // drop one device and replan; the flight recording (if enabled)
        // now captures the degraded search, so `explain --diff` can
        // attribute the cost of the loss
        let dr = rannc::hw::DeviceRank {
            node: rank / cluster.node.devices,
            local: rank % cluster.node.devices,
        };
        let degraded = match cluster.without_device(dr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot lose device {rank}: {e}");
                std::process::exit(1);
            }
        };
        match rannc.repartition(&graph, &plan, &degraded) {
            Ok(p) => plan = p,
            Err(e) => {
                eprintln!("replanning after losing device {rank} failed: {e}");
                std::process::exit(1);
            }
        }
        eprintln!("lost device {rank}: replanned for the surviving cluster");
        // downstream simulation runs on the capacity the replanned plan
        // was verified against
        cluster = degraded.planning_view();
    }
    if let Some(path) = &args.explain_out {
        match rannc::obs::recorder::take() {
            Some(rec) => {
                let text = rannc::obs::recorder::to_json(&rec);
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote explain artifact to {path} — render with `rannc-plan explain`");
            }
            None => {
                eprintln!(
                    "--explain-out: no search was recorded (a --load'ed plan skips the search)"
                );
                std::process::exit(1);
            }
        }
    }
    println!("{}", plan.summary());

    if args.command == Command::Verify {
        run_verify(&graph, &plan, &cluster, &args, precision);
        finish_obs(&args);
        return;
    }
    let opts = if args.mixed {
        ProfilerOptions::mixed()
    } else {
        ProfilerOptions::fp32()
    };
    let cost = cost_spec.build(&graph, cluster.device.clone(), opts, &cluster);
    if args.command == Command::Faults {
        run_faults(&args, &rannc, &plan, &*cost, &cluster);
        finish_obs(&args);
        return;
    }
    if args.command == Command::Churn {
        run_churn(&args, &rannc, &plan, &*cost, &cluster);
        finish_obs(&args);
        return;
    }
    let spec = rannc::pipeline::spec_from_plan(&plan, &*cost, &cluster).expect("valid plan");
    // trace export needs the per-event timeline even without --timeline
    let want_timeline = args.timeline || args.trace_out.is_some();
    let out = simulate_sync(&spec, SyncSchedule::FillDrain, want_timeline);
    rannc::pipeline::publish_sim_metrics(&out.result);
    println!(
        "simulated iteration: {:.2} ms | throughput {:.1} samples/s | utilization {:.0}%",
        out.result.iteration_time * 1e3,
        out.result.throughput,
        out.result.utilization * 100.0
    );
    if let Some(tl) = out.timeline {
        rannc::pipeline::record_timeline("pipeline", &tl, plan.stages.len());
        if args.timeline {
            println!("\n{}", render_timeline(&tl, plan.stages.len(), 100));
        }
    }
    if let Some(path) = &args.dot {
        let sets: Vec<TaskSet> = plan.stages.iter().map(|s| s.set.clone()).collect();
        let dot = rannc::graph::dot::to_dot(&graph, Some(&sets));
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote partitioned graph to {path}");
    }
    finish_obs(&args);
}

/// Flush the requested observability sinks at the end of a run.
fn finish_obs(args: &Args) {
    if let Some(path) = &args.trace_out {
        match rannc::obs::sink::write_chrome_trace(std::path::Path::new(path)) {
            Ok(()) => eprintln!(
                "wrote Chrome trace to {path} ({} events) — open in https://ui.perfetto.dev",
                rannc::obs::trace::event_count()
            ),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        match rannc::obs::sink::write_metrics_jsonl(std::path::Path::new(path)) {
            Ok(()) => eprintln!("wrote metrics log to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.obs_summary {
        println!("\n{}", rannc::obs::sink::summary());
    }
}

/// The `explain` subcommand: render one flight recording, or attribute
/// the cost delta between two of them.
fn run_explain(args: &Args) {
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let rendered = if args.explain_diff {
        let a = read(&args.explain_files[0]);
        let b = read(&args.explain_files[1]);
        rannc::obs::explain::render_diff(&a, &b)
    } else {
        rannc::obs::explain::render(&read(&args.explain_files[0]), args.top)
    };
    match rendered {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("invalid explain artifact: {e}");
            std::process::exit(1);
        }
    }
}

/// The `obs-check` subcommand: validate trace/metrics artifacts.
fn run_obs_check(args: &Args) {
    let mut failed = false;
    if let Some(path) = &args.obs_trace {
        match std::fs::read_to_string(path) {
            Ok(text) => match rannc::obs::check::check_trace(&text) {
                Ok(s) => println!(
                    "trace {path}: OK — {} slices across {} lanes ({} metadata events)",
                    s.slices, s.lanes, s.metadata
                ),
                Err(e) => {
                    eprintln!("trace {path}: INVALID — {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &args.obs_metrics {
        match std::fs::read_to_string(path) {
            Ok(text) => match rannc::obs::check::check_metrics(&text) {
                Ok(s) => println!(
                    "metrics {path}: OK — {} lines ({} counters, {} gauges, {} histograms)",
                    s.lines(),
                    s.counters,
                    s.gauges,
                    s.histograms
                ),
                Err(e) => {
                    eprintln!("metrics {path}: INVALID — {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// The `verify` subcommand: run all three static passes — plus, under
/// `--deep`, the dataflow certification engine (certified peak memory
/// and comm-race checks for both schedules) — and report.
fn run_verify(
    graph: &TaskGraph,
    plan: &rannc::core::PartitionPlan,
    cluster: &ClusterSpec,
    args: &Args,
    precision: Precision,
) {
    use rannc::verify::{verify_graph, verify_plan, verify_schedule};
    let mut report = verify_graph(graph);
    report.merge(verify_plan(graph, &plan.view(), cluster));
    for schedule in [SyncSchedule::FillDrain, SyncSchedule::OneFOneB] {
        report.merge(verify_schedule(&rannc::pipeline::schedule_model(
            schedule,
            plan.stages.len(),
            plan.microbatches,
        )));
    }
    let mut scope = "graph, plan, and both schedules";
    if args.deep {
        scope = "graph, plan, both schedules, certified memory, and comm programs";
        for schedule in [SyncSchedule::FillDrain, SyncSchedule::OneFOneB] {
            match rannc::pipeline::deep_verify_plan(graph, plan, cluster, schedule, precision) {
                Ok((deep, certified)) => {
                    for (i, c) in certified.iter().enumerate() {
                        eprintln!(
                            "{schedule:?} stage {i}: certified peak {:.2} GiB \
                             (stash depth {}) vs estimate {:.2} GiB on {:.2} GiB device d{}",
                            c.certified_bytes as f64 / (1u64 << 30) as f64,
                            c.stash_depth,
                            c.estimate_bytes as f64 / (1u64 << 30) as f64,
                            c.capacity_bytes as f64 / (1u64 << 30) as f64,
                            c.device,
                        );
                    }
                    report.merge(deep);
                }
                Err(e) => {
                    eprintln!("cannot derive the communication program: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let (errors, warnings) = report.counts();
    if report.is_clean() {
        println!("verification clean: {scope} pass");
    } else {
        print!("{}", report.render());
        println!("{errors} error(s), {warnings} warning(s)");
    }
    if errors > 0 || (args.deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}

/// The `faults` subcommand: simulate the same campaign under both
/// recovery policies and print a side-by-side report.
fn run_faults(
    args: &Args,
    rannc: &Rannc,
    plan: &rannc::core::PartitionPlan,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
) {
    let mut faults = FaultPlan::new(args.seed);
    for &(rank, at_iter) in &args.fail {
        faults.push(FaultEvent::DeviceFail { rank, at_iter });
    }
    for &(rank, slowdown) in &args.straggler {
        faults.push(FaultEvent::Straggler { rank, slowdown });
    }
    if let Some(factor) = args.link_degrade {
        faults.push(FaultEvent::LinkDegrade { factor });
    }
    if let Some(prob) = args.comm_error {
        faults.push(FaultEvent::TransientCommError { prob });
    }
    if faults.is_empty() {
        eprintln!("note: no fault events given; simulating a fault-free campaign");
    }

    println!(
        "fault campaign: {} iterations, checkpoint every {}, {} scripted event(s), seed {}",
        args.iterations,
        args.checkpoint_every,
        faults.events().len(),
        args.seed
    );
    let mut goodputs = Vec::new();
    for policy in [RecoveryPolicy::Degrade, RecoveryPolicy::Replan] {
        let cfg = FaultSimConfig {
            iterations: args.iterations,
            checkpoint_every: args.checkpoint_every,
            detect_timeout: args.detect_timeout,
            restore_cost: args.restore_cost,
            replan_cost: args.replan_cost,
            policy,
        };
        let report =
            match rannc::pipeline::simulate_faulted(rannc, plan, cost, cluster, &faults, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fault simulation failed: {e}");
                    std::process::exit(1);
                }
            };
        print_report(policy, &report);
        goodputs.push((policy, report.goodput));
    }
    if let [(_, degrade), (_, replan)] = goodputs[..] {
        if replan > degrade && degrade > 0.0 {
            println!(
                "\nelastic replanning sustains {:.2}x the goodput of degrade-only recovery",
                replan / degrade
            );
        }
    }
}

fn print_report(policy: RecoveryPolicy, r: &FaultSimReport) {
    println!(
        "\npolicy {policy:?}: {} iterations in {:.1} s | goodput {:.1} samples/s | \
         {} recoveries | MTTR {:.1} s{}",
        r.completed_iterations,
        r.wall_time,
        r.goodput,
        r.recoveries.len(),
        r.mttr(),
        if r.halted { " | HALTED" } else { "" },
    );
    for rec in &r.recoveries {
        println!(
            "  rank {} died at iteration {}: lost {} iteration(s), {:.1} s downtime, {}",
            rec.rank,
            rec.at_iter,
            rec.lost_iters,
            rec.downtime,
            if rec.replanned {
                "re-partitioned for survivors".to_string()
            } else if rec.new_iteration_time.is_finite() {
                "kept plan (degraded)".to_string()
            } else {
                "unrecoverable".to_string()
            },
        );
    }
}

/// The `churn` subcommand: play a cluster-event stream against the plan
/// under one or all replanning policies and report the decision logs.
fn run_churn(
    args: &Args,
    rannc: &Rannc,
    plan: &rannc::core::PartitionPlan,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
) {
    let trace = if let Some(path) = &args.churn_trace {
        match ClusterEventTrace::load(std::path::Path::new(path)) {
            Ok(t) => {
                eprintln!(
                    "loaded churn trace from {path} ({} events)",
                    t.events().len()
                );
                t
            }
            Err(e) => {
                eprintln!("cannot load churn trace {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        ClusterEventTrace::generate(args.seed, args.events, cluster, args.mean_gap)
    };
    if let Some(path) = &args.save_trace {
        if let Err(e) = trace.save(path) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("saved churn trace to {path}");
    }
    println!(
        "churn campaign: {} iterations, {} event(s), seed {}",
        args.iterations,
        trace.events().len(),
        trace.seed()
    );

    let policies: Vec<ChurnPolicy> = match args.policy {
        ChurnPolicyArg::Replan => vec![ChurnPolicy::ReplanAlways],
        ChurnPolicyArg::Ride => vec![ChurnPolicy::RideItOut],
        ChurnPolicyArg::Degrade => vec![ChurnPolicy::DegradeInPlace],
        ChurnPolicyArg::Adaptive => vec![ChurnPolicy::Adaptive],
        ChurnPolicyArg::All => vec![
            ChurnPolicy::ReplanAlways,
            ChurnPolicy::RideItOut,
            ChurnPolicy::DegradeInPlace,
            ChurnPolicy::Adaptive,
        ],
    };
    let mut scored: Vec<(ChurnPolicy, f64)> = Vec::new();
    for policy in policies {
        let cfg = ChurnSimConfig {
            iterations: args.iterations,
            detect_timeout: args.detect_timeout,
            restore_cost: args.restore_cost,
            replan_cost: args.replan_cost,
            policy,
            horizon: args.horizon,
            ..ChurnSimConfig::default()
        };
        let report = match rannc::pipeline::simulate_churn(rannc, plan, cost, cluster, &trace, &cfg)
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("churn simulation failed: {e}");
                std::process::exit(1);
            }
        };
        print_churn_report(policy, &report);
        scored.push((policy, report.goodput));
    }
    if scored.len() > 1 {
        let best = scored
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one policy ran");
        println!(
            "\nbest policy for this trace: {:?} at {:.1} samples/s",
            best.0, best.1
        );
    }
}

fn print_churn_report(policy: ChurnPolicy, r: &ChurnReport) {
    println!(
        "\npolicy {policy:?}: {} iterations in {:.1} s | goodput {:.1} samples/s | \
         {} replan(s) | MTTR {:.1} s{}",
        r.completed_iterations,
        r.wall_time,
        r.goodput,
        r.replans,
        r.mttr(),
        if r.halted { " | HALTED" } else { "" },
    );
    for d in &r.decisions {
        println!(
            "  iter {:>7} {:<8} -> {:<8} {:.1} s downtime, {:.2} ms/iter{}",
            d.at_iter,
            d.event,
            d.action.tag(),
            d.downtime,
            if d.iteration_time.is_finite() {
                d.iteration_time * 1e3
            } else {
                f64::NAN
            },
            if d.moved_bytes > 0 {
                format!(", moved {:.1} MiB", d.moved_bytes as f64 / (1 << 20) as f64)
            } else {
                String::new()
            },
        );
    }
}

fn build_graph(args: &Args) -> TaskGraph {
    match args.model {
        ModelKind::Bert => bert_graph(&BertConfig::enlarged(args.hidden, args.layers)),
        ModelKind::Gpt => gpt_graph(&GptConfig::enlarged(args.hidden, args.layers)),
        ModelKind::T5 => {
            let mut cfg = T5Config::base();
            cfg.hidden = args.hidden;
            cfg.heads = (args.hidden / 64).max(1);
            cfg.kv_inner = args.hidden;
            cfg.intermediate = 4 * args.hidden;
            cfg.encoder_layers = args.layers;
            cfg.decoder_layers = args.layers;
            t5_graph(&cfg)
        }
        ModelKind::Resnet => {
            let depth = match args.layers {
                50 => ResNetDepth::R50,
                101 => ResNetDepth::R101,
                152 => ResNetDepth::R152,
                other => {
                    eprintln!("resnet supports --layers 50|101|152, got {other}");
                    std::process::exit(2);
                }
            };
            resnet_graph(&ResNetConfig::new(depth, args.width_factor))
        }
        ModelKind::Mlp => mlp_graph(&MlpConfig::deep(args.hidden, args.hidden, args.layers, 10)),
    }
}
