//! Hand-rolled argument parsing (no external CLI crates in the
//! offline dependency set).

/// Usage text shown on `--help` or a parse error.
pub const USAGE: &str = "\
rannc-plan — automatic model partitioning (RaNNC reproduction)

USAGE:
  rannc-plan --model <bert|gpt|t5|resnet|mlp> [OPTIONS]

MODEL OPTIONS:
  --hidden <N>        hidden size (transformers/mlp; default 1024)
  --layers <N>        layer count (default 24; resnet: 50|101|152)
  --width-factor <N>  resnet width factor (default 1)

CLUSTER OPTIONS:
  --nodes <N>         compute nodes (default 1)
  --gpus-per-node <N> devices per node (default 8)
  --memory-gib <N>    device memory override in GiB (default 32)

TRAINING OPTIONS:
  --batch <N>         global mini-batch size (default 256)
  --k <N>             block count for block-level partitioning (default 32)
  --mixed             mixed-precision training (default fp32)
  --noise <SIGMA>     profiling noise amplitude (default 0)

OUTPUT OPTIONS:
  --timeline          print an ASCII schedule timeline
  --dot <FILE>        write the partitioned graph in Graphviz format
  --save <FILE>       cache the partition plan (deployment file)
  --load <FILE>       reuse a cached plan instead of re-partitioning
  --help              show this help";

/// Supported model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// BERT-style encoder with MLM+NSP heads.
    Bert,
    /// GPT-style decoder.
    Gpt,
    /// T5-style encoder–decoder.
    T5,
    /// Width-scaled ResNet.
    Resnet,
    /// Deep MLP.
    Mlp,
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    pub model: ModelKind,
    pub hidden: usize,
    pub layers: usize,
    pub width_factor: usize,
    pub nodes: usize,
    pub gpus_per_node: usize,
    pub memory_gib: Option<usize>,
    pub batch: usize,
    pub k: usize,
    pub mixed: bool,
    pub noise: f64,
    pub timeline: bool,
    pub dot: Option<String>,
    pub save: Option<String>,
    pub load: Option<String>,
    pub help: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            model: ModelKind::Bert,
            hidden: 1024,
            layers: 24,
            width_factor: 1,
            nodes: 1,
            gpus_per_node: 8,
            memory_gib: None,
            batch: 256,
            k: 32,
            mixed: false,
            noise: 0.0,
            timeline: false,
            dot: None,
            save: None,
            load: None,
            help: false,
        }
    }
}

impl Args {
    /// Parse an argument iterator (without the program name).
    pub fn parse(mut it: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut a = Args::default();
        let mut model_given = false;
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--model" => {
                    let v = value(&flag, &mut it)?;
                    a.model = match v.as_str() {
                        "bert" => ModelKind::Bert,
                        "gpt" => ModelKind::Gpt,
                        "t5" => ModelKind::T5,
                        "resnet" => ModelKind::Resnet,
                        "mlp" => ModelKind::Mlp,
                        other => return Err(format!("unknown model `{other}`")),
                    };
                    model_given = true;
                }
                "--hidden" => a.hidden = num(&flag, &mut it)?,
                "--layers" => a.layers = num(&flag, &mut it)?,
                "--width-factor" => a.width_factor = num(&flag, &mut it)?,
                "--nodes" => a.nodes = num(&flag, &mut it)?,
                "--gpus-per-node" => a.gpus_per_node = num(&flag, &mut it)?,
                "--memory-gib" => a.memory_gib = Some(num(&flag, &mut it)?),
                "--batch" => a.batch = num(&flag, &mut it)?,
                "--k" => a.k = num(&flag, &mut it)?,
                "--mixed" => a.mixed = true,
                "--noise" => {
                    a.noise = value(&flag, &mut it)?
                        .parse()
                        .map_err(|e| format!("--noise: {e}"))?
                }
                "--timeline" => a.timeline = true,
                "--dot" => a.dot = Some(value(&flag, &mut it)?),
                "--save" => a.save = Some(value(&flag, &mut it)?),
                "--load" => a.load = Some(value(&flag, &mut it)?),
                "--help" | "-h" => a.help = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if !model_given && !a.help {
            return Err("--model is required".into());
        }
        if a.nodes == 0 || a.gpus_per_node == 0 || a.batch == 0 || a.k == 0 {
            return Err("numeric options must be positive".into());
        }
        Ok(a)
    }
}

fn value(flag: &str, it: &mut impl Iterator<Item = String>) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn num(flag: &str, it: &mut impl Iterator<Item = String>) -> Result<usize, String> {
    value(flag, it)?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn full_command_line() {
        let a = parse(
            "--model bert --hidden 2048 --layers 96 --nodes 4 --batch 256 --k 32 --mixed --timeline",
        )
        .unwrap();
        assert_eq!(a.model, ModelKind::Bert);
        assert_eq!(a.hidden, 2048);
        assert_eq!(a.layers, 96);
        assert_eq!(a.nodes, 4);
        assert!(a.mixed);
        assert!(a.timeline);
    }

    #[test]
    fn model_required() {
        assert!(parse("--hidden 128").is_err());
        assert!(parse("--help").unwrap().help);
    }

    #[test]
    fn unknown_flag_rejected() {
        let e = parse("--model bert --frobnicate").unwrap_err();
        assert!(e.contains("frobnicate"));
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse("--model bert --hidden").is_err());
    }

    #[test]
    fn zero_rejected() {
        assert!(parse("--model bert --nodes 0").is_err());
    }

    #[test]
    fn noise_and_dot() {
        let a = parse("--model t5 --noise 0.1 --dot /tmp/x.dot").unwrap();
        assert_eq!(a.noise, 0.1);
        assert_eq!(a.dot.as_deref(), Some("/tmp/x.dot"));
    }

    #[test]
    fn save_load_flags() {
        let a = parse("--model bert --save /tmp/p.rncp").unwrap();
        assert_eq!(a.save.as_deref(), Some("/tmp/p.rncp"));
        let a = parse("--model bert --load /tmp/p.rncp").unwrap();
        assert_eq!(a.load.as_deref(), Some("/tmp/p.rncp"));
    }

    #[test]
    fn resnet_flags() {
        let a = parse("--model resnet --layers 152 --width-factor 8").unwrap();
        assert_eq!(a.model, ModelKind::Resnet);
        assert_eq!(a.width_factor, 8);
    }
}
