//! Hand-rolled argument parsing (no external CLI crates in the
//! offline dependency set).

/// Usage text shown on `--help` or a parse error.
pub const USAGE: &str = "\
rannc-plan — automatic model partitioning (RaNNC reproduction)

USAGE:
  rannc-plan --model <bert|gpt|t5|resnet|mlp> [OPTIONS]
  rannc-plan faults --model <...> [OPTIONS] [FAULT OPTIONS]
  rannc-plan churn --model <...> [OPTIONS] [CHURN OPTIONS]
  rannc-plan verify --model <...> [OPTIONS]
  rannc-plan obs-check [--trace FILE] [--metrics FILE]
  rannc-plan explain <ARTIFACT> [--top N]
  rannc-plan explain --diff <ARTIFACT_A> <ARTIFACT_B>

The `faults` subcommand partitions the model, then simulates a long
training campaign under an injected fault plan with BOTH recovery
policies (degrade-only vs elastic replan) and reports goodput and MTTR.

The `churn` subcommand simulates continuous cluster churn: a seeded
stream of join/leave/degrade/recover events plays against the plan
under each replanning policy (replan-always, ride-it-out,
degrade-in-place, adaptive), scoring goodput and MTTR and printing the
per-event decision log. Traces replay deterministically from the seed
and can be saved/loaded as JSON spec files.

The `verify` subcommand runs the static verifier (rannc-verify) over
the model's task graph, a partition plan (freshly computed, or a
deployment file via --load), and both synchronous pipeline schedules.
Every diagnostic is printed as `severity[RV0xx]: location: message`;
the exit code is nonzero iff any error-severity diagnostic was found.
With --deep it additionally runs the dataflow certification engine:
liveness-certified peak memory per (stage, device slot) checked
against device capacity (RV100/RV101) and a static race check of the
plan's derived per-rank communication program — collective issue
orders, send/recv pairing, deadlock cycles, dead and duplicate
transfers (RV060-RV064) — under both schedules. --deny-warnings makes
warning-severity diagnostics also fail the exit code.

The `obs-check` subcommand validates observability artifacts produced
by --trace-out / --metrics-out: the Chrome trace must be well-formed
JSON with properly nested slices, and the metrics log must be valid
JSONL with consistent counter/histogram invariants. Exits nonzero if
either file fails validation.

The `explain` subcommand renders a plan flight recording written by
--explain-out: the winning plan's per-stage cost breakdown (fwd/bwd
compute, transfer, all-reduce, optimizer, estimated vs certified peak
memory), the top-k runner-up plans with cost deltas, and the search's
pruning/cache account. With --diff it attributes the cost delta
between two recordings (e.g. before/after a device loss) stage by
stage. Exits nonzero if an artifact fails its schema validation.

MODEL OPTIONS:
  --hidden <N>        hidden size (transformers/mlp; default 1024)
  --layers <N>        layer count (default 24; resnet: 50|101|152)
  --width-factor <N>  resnet width factor (default 1)

CLUSTER OPTIONS:
  --nodes <N>         compute nodes (default 1)
  --gpus-per-node <N> devices per node (default 8)
  --memory-gib <N>    device memory override in GiB (default 32)

TRAINING OPTIONS:
  --batch <N>         global mini-batch size (default 256)
  --k <N>             block count for block-level partitioning (default 32)
  --mixed             mixed-precision training (default fp32)
  --noise <SIGMA>     profiling noise amplitude (default 0)

PLANNER ENGINE OPTIONS:
  --threads <N>       worker threads for the partition search (default:
                      RANNC_THREADS env var, else available parallelism)
  --tp-max <N>        largest tensor-parallel degree the (S, MB, T)
                      search may assign per stage (default 1 = the
                      historical pipeline/data-parallel-only search)
  --planner-stats     print search/cache statistics after partitioning
  --cost-model <analytical|calibrated:FILE>
                      cost model pricing the search and the simulation
                      (default: analytical; `calibrated:FILE` loads a JSON
                      calibration of per-op/per-link correction factors)

FAULT OPTIONS (faults subcommand):
  --fail <RANK@ITER>      kill device RANK at iteration ITER (repeatable)
  --straggler <RANK@X>    rank RANK computes X times slower (repeatable)
  --link-degrade <F>      links keep fraction F of bandwidth, 0 < F <= 1
  --comm-error <P>        per-transfer failure probability in [0, 1)
  --iterations <N>        campaign length in iterations (default 100000)
  --checkpoint-every <N>  checkpoint interval (default 1000)
  --detect-timeout <S>    failure detection time, seconds (default 5)
  --restore-cost <S>      checkpoint restore time, seconds (default 2)
  --replan-cost <S>       re-partition + redeploy time, seconds (default 15)
  --seed <N>              fault-plan seed (default 42)

CHURN OPTIONS (churn subcommand):
  --events <N>          generated cluster events (default 50)
  --mean-gap <N>        mean iterations between events (default 200)
  --churn-trace <FILE>  load the event trace from a JSON spec file
                        instead of generating one from --seed
  --save-trace <FILE>   write the (generated or loaded) trace as JSON
  --policy <replan|ride|degrade|adaptive|all>
                        policy to simulate (default: all, side by side)
  --horizon <N>         iterations the adaptive policy amortizes a
                        replan over (default 2000)
  --iterations, --detect-timeout, --restore-cost, --replan-cost and
  --seed apply as for the faults subcommand

VERIFY OPTIONS (verify subcommand):
  --deep              also run the dataflow certification engine
                      (certified memory + comm-race checks, RV06x/RV1xx)
  --deny-warnings     exit nonzero on warnings, not just errors

OBSERVABILITY OPTIONS:
  --trace-out <FILE>    write a Chrome-trace (Perfetto) JSON of all spans
  --metrics-out <FILE>  write the metrics registry as JSONL
  --obs-summary         print a human-readable metrics summary table
  --trace <FILE>        (obs-check) trace file to validate
  --metrics <FILE>      (obs-check) metrics file to validate
  --explain-out <FILE>  record the partition search and write the explain
                        artifact (schema v1 JSON) for `explain`
  --lose-device <RANK>  after planning, drop device RANK and replan; the
                        recording (and the simulated iteration) then
                        reflect the degraded search
  --diff                (explain) compare two artifacts stage by stage
  --top <N>             (explain) runner-up plans to show (default 5)

OUTPUT OPTIONS:
  --timeline          print an ASCII schedule timeline
  --dot <FILE>        write the partitioned graph in Graphviz format
  --save <FILE>       cache the partition plan (deployment file)
  --load <FILE>       reuse a cached plan instead of re-partitioning
  --help              show this help";

/// Which subcommand was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Partition and simulate one iteration (the default).
    Plan,
    /// Fault-injection campaign: degrade vs replan report.
    Faults,
    /// Cluster-churn campaign: policy comparison over an event stream.
    Churn,
    /// Static verification of graph, plan, and schedules.
    Verify,
    /// Validate observability artifacts (trace/metrics files).
    ObsCheck,
    /// Render a plan flight recording (or diff two of them).
    Explain,
}

/// `--cost-model` choice: how plans are priced. The calibration file is
/// loaded later (in `main`) so parsing stays I/O-free and testable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CostModelArg {
    /// The pure analytical model (the default).
    #[default]
    Analytical,
    /// Analytical model corrected by the JSON calibration at this path.
    Calibrated(String),
}

/// `--policy` choice for the churn subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChurnPolicyArg {
    /// Replan on every capacity-changing event.
    Replan,
    /// Never replan; restore shed replicas when capacity returns.
    Ride,
    /// Never replan; losses are permanent.
    Degrade,
    /// Cost-compare replan vs ride per event.
    Adaptive,
    /// Run all four policies side by side (the default).
    #[default]
    All,
}

impl ChurnPolicyArg {
    fn parse(v: &str) -> Result<Self, String> {
        match v {
            "replan" => Ok(ChurnPolicyArg::Replan),
            "ride" => Ok(ChurnPolicyArg::Ride),
            "degrade" => Ok(ChurnPolicyArg::Degrade),
            "adaptive" => Ok(ChurnPolicyArg::Adaptive),
            "all" => Ok(ChurnPolicyArg::All),
            other => Err(format!(
                "--policy expects replan|ride|degrade|adaptive|all, got `{other}`"
            )),
        }
    }
}

impl CostModelArg {
    fn parse(v: &str) -> Result<Self, String> {
        match v {
            "analytical" => Ok(CostModelArg::Analytical),
            _ => match v.strip_prefix("calibrated:") {
                Some(path) if !path.is_empty() => Ok(CostModelArg::Calibrated(path.to_string())),
                Some(_) => Err("--cost-model calibrated: needs a file path".into()),
                None => Err(format!(
                    "--cost-model expects `analytical` or `calibrated:FILE`, got `{v}`"
                )),
            },
        }
    }
}

/// Supported model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// BERT-style encoder with MLM+NSP heads.
    Bert,
    /// GPT-style decoder.
    Gpt,
    /// T5-style encoder–decoder.
    T5,
    /// Width-scaled ResNet.
    Resnet,
    /// Deep MLP.
    Mlp,
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    pub command: Command,
    pub model: ModelKind,
    pub hidden: usize,
    pub layers: usize,
    pub width_factor: usize,
    pub nodes: usize,
    pub gpus_per_node: usize,
    pub memory_gib: Option<usize>,
    pub batch: usize,
    pub k: usize,
    pub mixed: bool,
    pub noise: f64,
    /// Search-engine worker threads (0 = auto).
    pub threads: usize,
    /// Largest tensor-parallel degree per stage (1 = 2D search).
    pub tp_max: usize,
    /// Print planner cache/search statistics.
    pub planner_stats: bool,
    /// Cost model pricing the search and simulation.
    pub cost_model: CostModelArg,
    /// Write a Chrome-trace (Perfetto) JSON of all recorded spans.
    pub trace_out: Option<String>,
    /// Write the metrics registry as a JSONL log.
    pub metrics_out: Option<String>,
    /// Print the human-readable metrics summary table on exit.
    pub obs_summary: bool,
    /// Trace file to validate (`obs-check` subcommand).
    pub obs_trace: Option<String>,
    /// Metrics file to validate (`obs-check` subcommand).
    pub obs_metrics: Option<String>,
    /// Record the partition search into this explain artifact.
    pub explain_out: Option<String>,
    /// Drop this device rank after planning and replan (recorded).
    pub lose_device: Option<usize>,
    /// Artifact file(s) for the `explain` subcommand.
    pub explain_files: Vec<String>,
    /// Diff two artifacts instead of rendering one.
    pub explain_diff: bool,
    /// Runner-up plans to show in `explain` (default 5).
    pub top: usize,
    /// Run the dataflow certification engine in `verify` (deep checks).
    pub deep: bool,
    /// Treat warning-severity diagnostics as fatal in `verify`.
    pub deny_warnings: bool,
    pub timeline: bool,
    pub dot: Option<String>,
    pub save: Option<String>,
    pub load: Option<String>,
    pub help: bool,
    /// Scripted device failures as `(rank, at_iter)`.
    pub fail: Vec<(usize, usize)>,
    /// Stragglers as `(rank, slowdown)`.
    pub straggler: Vec<(usize, f64)>,
    pub link_degrade: Option<f64>,
    pub comm_error: Option<f64>,
    pub iterations: usize,
    pub checkpoint_every: usize,
    pub detect_timeout: f64,
    pub restore_cost: f64,
    pub replan_cost: f64,
    pub seed: u64,
    /// Cluster events to generate (`churn` subcommand).
    pub events: usize,
    /// Mean iteration gap between generated events.
    pub mean_gap: usize,
    /// Load the event trace from this JSON spec file.
    pub churn_trace: Option<String>,
    /// Write the event trace to this JSON file.
    pub save_trace: Option<String>,
    /// Churn policy under test.
    pub policy: ChurnPolicyArg,
    /// Adaptive-policy amortization horizon, iterations.
    pub horizon: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            model: ModelKind::Bert,
            hidden: 1024,
            layers: 24,
            width_factor: 1,
            nodes: 1,
            gpus_per_node: 8,
            memory_gib: None,
            batch: 256,
            k: 32,
            mixed: false,
            noise: 0.0,
            threads: 0,
            tp_max: 1,
            planner_stats: false,
            cost_model: CostModelArg::default(),
            trace_out: None,
            metrics_out: None,
            obs_summary: false,
            obs_trace: None,
            obs_metrics: None,
            explain_out: None,
            lose_device: None,
            explain_files: Vec::new(),
            explain_diff: false,
            top: 5,
            deep: false,
            deny_warnings: false,
            timeline: false,
            dot: None,
            save: None,
            load: None,
            help: false,
            command: Command::Plan,
            fail: Vec::new(),
            straggler: Vec::new(),
            link_degrade: None,
            comm_error: None,
            iterations: 100_000,
            checkpoint_every: 1000,
            detect_timeout: 5.0,
            restore_cost: 2.0,
            replan_cost: 15.0,
            seed: 42,
            events: 50,
            mean_gap: 200,
            churn_trace: None,
            save_trace: None,
            policy: ChurnPolicyArg::default(),
            horizon: 2000,
        }
    }
}

impl Args {
    /// Parse an argument iterator (without the program name).
    pub fn parse(it: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut it = it.peekable();
        let mut a = Args::default();
        let mut model_given = false;
        // subcommand dispatch on the first positional argument
        match it.peek().map(String::as_str) {
            Some("faults") => {
                it.next();
                a.command = Command::Faults;
            }
            Some("churn") => {
                it.next();
                a.command = Command::Churn;
            }
            Some("verify") => {
                it.next();
                a.command = Command::Verify;
            }
            Some("obs-check") => {
                it.next();
                a.command = Command::ObsCheck;
            }
            Some("explain") => {
                it.next();
                a.command = Command::Explain;
            }
            _ => {}
        }
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--model" => {
                    let v = value(&flag, &mut it)?;
                    a.model = match v.as_str() {
                        "bert" => ModelKind::Bert,
                        "gpt" => ModelKind::Gpt,
                        "t5" => ModelKind::T5,
                        "resnet" => ModelKind::Resnet,
                        "mlp" => ModelKind::Mlp,
                        other => return Err(format!("unknown model `{other}`")),
                    };
                    model_given = true;
                }
                "--hidden" => a.hidden = num(&flag, &mut it)?,
                "--layers" => a.layers = num(&flag, &mut it)?,
                "--width-factor" => a.width_factor = num(&flag, &mut it)?,
                "--nodes" => a.nodes = num(&flag, &mut it)?,
                "--gpus-per-node" => a.gpus_per_node = num(&flag, &mut it)?,
                "--memory-gib" => a.memory_gib = Some(num(&flag, &mut it)?),
                "--batch" => a.batch = num(&flag, &mut it)?,
                "--k" => a.k = num(&flag, &mut it)?,
                "--mixed" => a.mixed = true,
                "--noise" => {
                    a.noise = value(&flag, &mut it)?
                        .parse()
                        .map_err(|e| format!("--noise: {e}"))?
                }
                "--threads" => a.threads = num(&flag, &mut it)?,
                "--tp-max" => a.tp_max = num(&flag, &mut it)?,
                "--planner-stats" => a.planner_stats = true,
                "--cost-model" => a.cost_model = CostModelArg::parse(&value(&flag, &mut it)?)?,
                "--trace-out" => a.trace_out = Some(value(&flag, &mut it)?),
                "--metrics-out" => a.metrics_out = Some(value(&flag, &mut it)?),
                "--obs-summary" => a.obs_summary = true,
                "--trace" => a.obs_trace = Some(value(&flag, &mut it)?),
                "--metrics" => a.obs_metrics = Some(value(&flag, &mut it)?),
                "--explain-out" => a.explain_out = Some(value(&flag, &mut it)?),
                "--lose-device" => a.lose_device = Some(num(&flag, &mut it)?),
                "--diff" => a.explain_diff = true,
                "--top" => a.top = num(&flag, &mut it)?,
                "--deep" => a.deep = true,
                "--deny-warnings" => a.deny_warnings = true,
                "--timeline" => a.timeline = true,
                "--dot" => a.dot = Some(value(&flag, &mut it)?),
                "--save" => a.save = Some(value(&flag, &mut it)?),
                "--load" => a.load = Some(value(&flag, &mut it)?),
                "--fail" => {
                    let (rank, iter) = at_pair(&flag, &value(&flag, &mut it)?)?;
                    a.fail.push((rank, iter as usize));
                }
                "--straggler" => {
                    let (rank, slow) = at_pair(&flag, &value(&flag, &mut it)?)?;
                    if slow < 1.0 {
                        return Err("--straggler slowdown must be >= 1".into());
                    }
                    a.straggler.push((rank, slow));
                }
                "--link-degrade" => {
                    let f = float(&flag, &mut it)?;
                    if !(f > 0.0 && f <= 1.0) {
                        return Err("--link-degrade must be in (0, 1]".into());
                    }
                    a.link_degrade = Some(f);
                }
                "--comm-error" => {
                    let p = float(&flag, &mut it)?;
                    if !(0.0..1.0).contains(&p) {
                        return Err("--comm-error must be in [0, 1)".into());
                    }
                    a.comm_error = Some(p);
                }
                "--iterations" => a.iterations = num(&flag, &mut it)?,
                "--checkpoint-every" => a.checkpoint_every = num(&flag, &mut it)?,
                "--detect-timeout" => a.detect_timeout = float(&flag, &mut it)?,
                "--restore-cost" => a.restore_cost = float(&flag, &mut it)?,
                "--replan-cost" => a.replan_cost = float(&flag, &mut it)?,
                "--seed" => a.seed = num(&flag, &mut it)? as u64,
                "--events" => a.events = num(&flag, &mut it)?,
                "--mean-gap" => a.mean_gap = num(&flag, &mut it)?,
                "--churn-trace" => a.churn_trace = Some(value(&flag, &mut it)?),
                "--save-trace" => a.save_trace = Some(value(&flag, &mut it)?),
                "--policy" => a.policy = ChurnPolicyArg::parse(&value(&flag, &mut it)?)?,
                "--horizon" => a.horizon = num(&flag, &mut it)?,
                "--help" | "-h" => a.help = true,
                other if a.command == Command::Explain && !other.starts_with("--") => {
                    a.explain_files.push(other.to_string());
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if a.command == Command::ObsCheck {
            if a.obs_trace.is_none() && a.obs_metrics.is_none() && !a.help {
                return Err("obs-check needs --trace and/or --metrics".into());
            }
            return Ok(a);
        }
        if a.command == Command::Explain {
            if !a.help {
                let want = if a.explain_diff { 2 } else { 1 };
                if a.explain_files.len() != want {
                    return Err(if a.explain_diff {
                        "explain --diff needs exactly two artifact files".into()
                    } else {
                        "explain needs exactly one artifact file".into()
                    });
                }
            }
            return Ok(a);
        }
        if !model_given && !a.help {
            return Err("--model is required".into());
        }
        if a.nodes == 0 || a.gpus_per_node == 0 || a.batch == 0 || a.k == 0 {
            return Err("numeric options must be positive".into());
        }
        if a.tp_max == 0 {
            return Err("--tp-max must be positive".into());
        }
        if a.command == Command::Faults && (a.iterations == 0 || a.checkpoint_every == 0) {
            return Err("--iterations and --checkpoint-every must be positive".into());
        }
        if a.command == Command::Churn {
            if a.iterations == 0 {
                return Err("--iterations must be positive".into());
            }
            if a.events == 0 && a.churn_trace.is_none() {
                return Err("churn needs --events > 0 or a --churn-trace file".into());
            }
            if a.mean_gap == 0 || a.horizon == 0 {
                return Err("--mean-gap and --horizon must be positive".into());
            }
        }
        Ok(a)
    }
}

fn value(flag: &str, it: &mut impl Iterator<Item = String>) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn num(flag: &str, it: &mut impl Iterator<Item = String>) -> Result<usize, String> {
    value(flag, it)?.parse().map_err(|e| format!("{flag}: {e}"))
}

fn float(flag: &str, it: &mut impl Iterator<Item = String>) -> Result<f64, String> {
    value(flag, it)?.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Parse a `RANK@VALUE` pair (e.g. `--fail 3@500`, `--straggler 0@2.5`).
fn at_pair(flag: &str, v: &str) -> Result<(usize, f64), String> {
    let (rank, val) = v
        .split_once('@')
        .ok_or_else(|| format!("{flag} expects RANK@VALUE, got `{v}`"))?;
    let rank = rank.parse().map_err(|e| format!("{flag} rank: {e}"))?;
    let val = val.parse().map_err(|e| format!("{flag} value: {e}"))?;
    Ok((rank, val))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn full_command_line() {
        let a = parse(
            "--model bert --hidden 2048 --layers 96 --nodes 4 --batch 256 --k 32 --mixed --timeline",
        )
        .unwrap();
        assert_eq!(a.model, ModelKind::Bert);
        assert_eq!(a.hidden, 2048);
        assert_eq!(a.layers, 96);
        assert_eq!(a.nodes, 4);
        assert!(a.mixed);
        assert!(a.timeline);
    }

    #[test]
    fn model_required() {
        assert!(parse("--hidden 128").is_err());
        assert!(parse("--help").unwrap().help);
    }

    #[test]
    fn unknown_flag_rejected() {
        let e = parse("--model bert --frobnicate").unwrap_err();
        assert!(e.contains("frobnicate"));
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse("--model bert --hidden").is_err());
    }

    #[test]
    fn zero_rejected() {
        assert!(parse("--model bert --nodes 0").is_err());
    }

    #[test]
    fn noise_and_dot() {
        let a = parse("--model t5 --noise 0.1 --dot /tmp/x.dot").unwrap();
        assert_eq!(a.noise, 0.1);
        assert_eq!(a.dot.as_deref(), Some("/tmp/x.dot"));
    }

    #[test]
    fn save_load_flags() {
        let a = parse("--model bert --save /tmp/p.rncp").unwrap();
        assert_eq!(a.save.as_deref(), Some("/tmp/p.rncp"));
        let a = parse("--model bert --load /tmp/p.rncp").unwrap();
        assert_eq!(a.load.as_deref(), Some("/tmp/p.rncp"));
    }

    #[test]
    fn faults_subcommand() {
        let a = parse(
            "faults --model mlp --hidden 64 --layers 8 --nodes 2 \
             --fail 0@50000 --straggler 3@2.5 --link-degrade 0.5 --comm-error 0.1 \
             --iterations 200000 --checkpoint-every 500 --seed 7",
        )
        .unwrap();
        assert_eq!(a.command, Command::Faults);
        assert_eq!(a.fail, vec![(0, 50_000)]);
        assert_eq!(a.straggler, vec![(3, 2.5)]);
        assert_eq!(a.link_degrade, Some(0.5));
        assert_eq!(a.comm_error, Some(0.1));
        assert_eq!(a.iterations, 200_000);
        assert_eq!(a.checkpoint_every, 500);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn plan_is_default_command() {
        assert_eq!(parse("--model bert").unwrap().command, Command::Plan);
    }

    #[test]
    fn verify_subcommand() {
        let a = parse("verify --model mlp --nodes 2 --k 8").unwrap();
        assert_eq!(a.command, Command::Verify);
        assert_eq!(a.nodes, 2);
        let a = parse("verify --model bert --load /tmp/p.rncp").unwrap();
        assert_eq!(a.load.as_deref(), Some("/tmp/p.rncp"));
    }

    #[test]
    fn deep_verify_flags() {
        let d = parse("verify --model mlp").unwrap();
        assert!(!d.deep && !d.deny_warnings);
        let a = parse("verify --model mlp --deep --deny-warnings").unwrap();
        assert!(a.deep);
        assert!(a.deny_warnings);
    }

    #[test]
    fn bad_fault_pairs_rejected() {
        assert!(parse("faults --model mlp --fail 3").is_err());
        assert!(parse("faults --model mlp --fail x@5").is_err());
        assert!(parse("faults --model mlp --straggler 0@0.5").is_err());
        assert!(parse("faults --model mlp --link-degrade 0").is_err());
        assert!(parse("faults --model mlp --comm-error 1.0").is_err());
        assert!(parse("faults --model mlp --iterations 0").is_err());
    }

    #[test]
    fn planner_engine_flags() {
        let a = parse("--model bert --threads 4 --planner-stats").unwrap();
        assert_eq!(a.threads, 4);
        assert!(a.planner_stats);
        let d = parse("--model bert").unwrap();
        assert_eq!(d.threads, 0, "0 = auto-resolve");
        assert!(!d.planner_stats);
    }

    #[test]
    fn tp_max_flag() {
        let d = parse("--model bert").unwrap();
        assert_eq!(d.tp_max, 1, "third axis is opt-in");
        let a = parse("--model bert --tp-max 8").unwrap();
        assert_eq!(a.tp_max, 8);
        let v = parse("verify --model bert --tp-max 4 --deep").unwrap();
        assert_eq!(v.tp_max, 4);
        assert!(parse("--model bert --tp-max 0").is_err());
        assert!(parse("--model bert --tp-max").is_err());
    }

    #[test]
    fn cost_model_flag() {
        let d = parse("--model bert").unwrap();
        assert_eq!(d.cost_model, CostModelArg::Analytical);
        let a = parse("--model bert --cost-model analytical").unwrap();
        assert_eq!(a.cost_model, CostModelArg::Analytical);
        let a = parse("--model bert --cost-model calibrated:/tmp/cal.json").unwrap();
        assert_eq!(
            a.cost_model,
            CostModelArg::Calibrated("/tmp/cal.json".into())
        );
        let a = parse("faults --model mlp --cost-model calibrated:c.json").unwrap();
        assert_eq!(a.cost_model, CostModelArg::Calibrated("c.json".into()));
        assert!(parse("--model bert --cost-model magic").is_err());
        assert!(parse("--model bert --cost-model calibrated:").is_err());
        assert!(parse("--model bert --cost-model").is_err());
    }

    #[test]
    fn observability_flags() {
        let a =
            parse("--model bert --trace-out /tmp/t.json --metrics-out /tmp/m.jsonl --obs-summary")
                .unwrap();
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.jsonl"));
        assert!(a.obs_summary);
        let d = parse("--model bert").unwrap();
        assert_eq!(d.trace_out, None);
        assert_eq!(d.metrics_out, None);
        assert!(!d.obs_summary);
    }

    #[test]
    fn obs_check_subcommand() {
        let a = parse("obs-check --trace /tmp/t.json --metrics /tmp/m.jsonl").unwrap();
        assert_eq!(a.command, Command::ObsCheck);
        assert_eq!(a.obs_trace.as_deref(), Some("/tmp/t.json"));
        assert_eq!(a.obs_metrics.as_deref(), Some("/tmp/m.jsonl"));
        // --model is not required for obs-check
        let a = parse("obs-check --trace /tmp/t.json").unwrap();
        assert_eq!(a.obs_metrics, None);
        // but at least one input file is
        assert!(parse("obs-check").is_err());
    }

    #[test]
    fn explain_subcommand() {
        let a = parse("explain /tmp/a.json").unwrap();
        assert_eq!(a.command, Command::Explain);
        assert_eq!(a.explain_files, vec!["/tmp/a.json".to_string()]);
        assert!(!a.explain_diff);
        assert_eq!(a.top, 5, "default runner-up count");
        let a = parse("explain /tmp/a.json --top 3").unwrap();
        assert_eq!(a.top, 3);
        let a = parse("explain --diff /tmp/a.json /tmp/b.json").unwrap();
        assert!(a.explain_diff);
        assert_eq!(a.explain_files.len(), 2);
        // arity is validated per mode
        assert!(parse("explain").is_err());
        assert!(parse("explain a.json b.json").is_err());
        assert!(parse("explain --diff a.json").is_err());
        // positional files only exist under the explain subcommand
        assert!(parse("--model bert stray.json").is_err());
    }

    #[test]
    fn explain_out_and_lose_device_flags() {
        let a = parse("--model bert --explain-out /tmp/e.json --lose-device 3").unwrap();
        assert_eq!(a.explain_out.as_deref(), Some("/tmp/e.json"));
        assert_eq!(a.lose_device, Some(3));
        let d = parse("--model bert").unwrap();
        assert_eq!(d.explain_out, None);
        assert_eq!(d.lose_device, None);
    }

    #[test]
    fn churn_subcommand() {
        let a = parse(
            "churn --model bert --nodes 2 --events 50 --mean-gap 100 \
             --policy adaptive --horizon 5000 --seed 9 --save-trace /tmp/t.json",
        )
        .unwrap();
        assert_eq!(a.command, Command::Churn);
        assert_eq!(a.events, 50);
        assert_eq!(a.mean_gap, 100);
        assert_eq!(a.policy, ChurnPolicyArg::Adaptive);
        assert_eq!(a.horizon, 5000);
        assert_eq!(a.seed, 9);
        assert_eq!(a.save_trace.as_deref(), Some("/tmp/t.json"));
        // defaults: all policies, 50 generated events
        let d = parse("churn --model bert").unwrap();
        assert_eq!(d.policy, ChurnPolicyArg::All);
        assert_eq!(d.events, 50);
        // spec-file traces skip generation
        let t = parse("churn --model bert --churn-trace /tmp/spec.json").unwrap();
        assert_eq!(t.churn_trace.as_deref(), Some("/tmp/spec.json"));
    }

    #[test]
    fn bad_churn_flags_rejected() {
        assert!(parse("churn --model bert --policy magic").is_err());
        assert!(parse("churn --model bert --events 0").is_err());
        assert!(parse("churn --model bert --mean-gap 0").is_err());
        assert!(parse("churn --model bert --horizon 0").is_err());
        assert!(parse("churn --model bert --iterations 0").is_err());
        // zero generated events is fine when a trace file supplies them
        assert!(parse("churn --model bert --events 0 --churn-trace /tmp/t.json").is_ok());
    }

    #[test]
    fn resnet_flags() {
        let a = parse("--model resnet --layers 152 --width-factor 8").unwrap();
        assert_eq!(a.model, ModelKind::Resnet);
        assert_eq!(a.width_factor, 8);
    }
}
