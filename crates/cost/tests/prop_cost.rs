//! Property-based sanity laws for the cost-model layer.
//!
//! Whatever the calibration says, a cost model must stay *physically
//! plausible*: moving more bytes can't be faster, widening an all-reduce
//! group can't be faster, and holding more activations resident can't
//! need less memory. Each law is checked against both the analytical
//! model and a randomly-perturbed calibrated model, so a bad calibration
//! can bend prices but never break monotonicity.

use proptest::prelude::*;
use rannc_cost::{AnalyticalCost, CalibratedCost, Calibration, CostModel};
use rannc_graph::{TaskGraph, TaskSet};
use rannc_hw::ClusterSpec;
use rannc_models::{bert_graph, BertConfig};
use rannc_profile::ProfilerOptions;

fn graph() -> TaskGraph {
    bert_graph(&BertConfig::tiny())
}

fn whole_set(g: &TaskGraph) -> TaskSet {
    TaskSet::from_ids(g.num_tasks(), g.task_ids())
}

/// A random but well-formed calibration: every factor positive, spread
/// far enough from 1.0 to matter, never so extreme the float math
/// degenerates.
fn calibrations() -> impl Strategy<Value = Calibration> {
    (
        (0.25f64..4.0, 0.25f64..4.0, 0.25f64..4.0, 0.25f64..4.0),
        (0.25f64..4.0, 0.25f64..4.0, 0.5f64..2.0),
    )
        .prop_map(
            |((compute, matmul, link_intra, link_inter), (allreduce, optimizer, memory))| {
                Calibration {
                    compute,
                    ops: vec![("matmul".into(), matmul)],
                    link_intra,
                    link_inter,
                    allreduce,
                    optimizer,
                    memory,
                }
            },
        )
}

/// Run `law` against the analytical model and a calibrated model built
/// from `cal`, labelling failures with the model that broke.
fn for_both_models(cal: &Calibration, law: impl Fn(&dyn CostModel, &ClusterSpec, &str)) {
    let g = graph();
    let cluster = ClusterSpec::v100_cluster(2);
    let analytical = AnalyticalCost::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
    law(&analytical, &cluster, "analytical");
    let calibrated = CalibratedCost::new(
        &g,
        cluster.device.clone(),
        ProfilerOptions::fp32(),
        cal.clone(),
        &cluster,
    );
    law(&calibrated, &cluster, "calibrated");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transfer time is nondecreasing in bytes, on both link classes.
    #[test]
    fn transfer_time_nondecreasing_in_bytes(
        cal in calibrations(),
        a in 0usize..(1 << 28),
        b in 0usize..(1 << 28),
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        for_both_models(&cal, |m, cluster, label| {
            for link in [cluster.planning_link(), cluster.inter_link] {
                let t_lo = m.transfer_time(link, lo);
                let t_hi = m.transfer_time(link, hi);
                assert!(
                    t_lo <= t_hi,
                    "{label}: transfer({lo}) = {t_lo} > transfer({hi}) = {t_hi}"
                );
            }
        });
    }

    /// All-reduce time is nondecreasing in bytes and in group size, for
    /// intra-node and node-spanning groups alike.
    #[test]
    fn allreduce_time_nondecreasing_in_bytes_and_group(
        cal in calibrations(),
        a in 0usize..(1 << 28),
        b in 0usize..(1 << 28),
        g1 in 1usize..17,
        g2 in 1usize..17,
    ) {
        let (blo, bhi) = (a.min(b), a.max(b));
        let (glo, ghi) = (g1.min(g2), g1.max(g2));
        for_both_models(&cal, |m, cluster, label| {
            for spans in [false, true] {
                let by_bytes_lo = m.allreduce_time(cluster, blo, ghi, spans);
                let by_bytes_hi = m.allreduce_time(cluster, bhi, ghi, spans);
                assert!(
                    by_bytes_lo <= by_bytes_hi,
                    "{label}/spans={spans}: allreduce({blo} B) = {by_bytes_lo} \
                     > allreduce({bhi} B) = {by_bytes_hi}"
                );
                let by_group_lo = m.allreduce_time(cluster, bhi, glo, spans);
                let by_group_hi = m.allreduce_time(cluster, bhi, ghi, spans);
                assert!(
                    by_group_lo <= by_group_hi,
                    "{label}/spans={spans}: allreduce(group {glo}) = {by_group_lo} \
                     > allreduce(group {ghi}) = {by_group_hi}"
                );
            }
        });
    }

    /// Peak stage memory is nondecreasing in the micro-batch size and in
    /// the number of in-flight micro-batches, with and without gradient
    /// checkpointing.
    #[test]
    fn stage_memory_nondecreasing_in_batch_and_inflight(
        cal in calibrations(),
        mb1 in 1usize..33,
        mb2 in 1usize..33,
        if1 in 1usize..9,
        if2 in 1usize..9,
        ckpt in any::<bool>(),
    ) {
        let (mlo, mhi) = (mb1.min(mb2), mb1.max(mb2));
        let (ilo, ihi) = (if1.min(if2), if1.max(if2));
        for_both_models(&cal, |m, _cluster, label| {
            let set = whole_set(m.graph());
            let by_batch_lo = m.stage_cost(&set, mlo, ihi, ckpt).mem_bytes;
            let by_batch_hi = m.stage_cost(&set, mhi, ihi, ckpt).mem_bytes;
            assert!(
                by_batch_lo <= by_batch_hi,
                "{label}/ckpt={ckpt}: mem(mb {mlo}) = {by_batch_lo} \
                 > mem(mb {mhi}) = {by_batch_hi}"
            );
            let by_inflight_lo = m.stage_cost(&set, mhi, ilo, ckpt).mem_bytes;
            let by_inflight_hi = m.stage_cost(&set, mhi, ihi, ckpt).mem_bytes;
            assert!(
                by_inflight_lo <= by_inflight_hi,
                "{label}/ckpt={ckpt}: mem(inflight {ilo}) = {by_inflight_lo} \
                 > mem(inflight {ihi}) = {by_inflight_hi}"
            );
        });
    }

    /// Optimizer time is nondecreasing in gradient bytes.
    #[test]
    fn optimizer_time_nondecreasing_in_bytes(
        cal in calibrations(),
        a in 0usize..(1 << 30),
        b in 0usize..(1 << 30),
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        for_both_models(&cal, |m, cluster, label| {
            let t_lo = m.optimizer_time(&cluster.device, lo);
            let t_hi = m.optimizer_time(&cluster.device, hi);
            assert!(
                t_lo <= t_hi,
                "{label}: optimizer({lo}) = {t_lo} > optimizer({hi}) = {t_hi}"
            );
        });
    }
}
