//! Property-based sanity laws for the cost-model layer.
//!
//! Whatever the calibration says, a cost model must stay *physically
//! plausible*: moving more bytes can't be faster, widening an all-reduce
//! group can't be faster, and holding more activations resident can't
//! need less memory. Each law is checked against both the analytical
//! model and a randomly-perturbed calibrated model, so a bad calibration
//! can bend prices but never break monotonicity.

use proptest::prelude::*;
use rannc_cost::{AnalyticalCost, CalibratedCost, Calibration, CostModel};
use rannc_graph::{TaskGraph, TaskSet};
use rannc_hw::ClusterSpec;
use rannc_models::{bert_graph, BertConfig};
use rannc_profile::ProfilerOptions;

fn graph() -> TaskGraph {
    bert_graph(&BertConfig::tiny())
}

fn whole_set(g: &TaskGraph) -> TaskSet {
    TaskSet::from_ids(g.num_tasks(), g.task_ids())
}

/// A random but well-formed calibration: every factor positive, spread
/// far enough from 1.0 to matter, never so extreme the float math
/// degenerates.
fn calibrations() -> impl Strategy<Value = Calibration> {
    (
        (0.25f64..4.0, 0.25f64..4.0, 0.25f64..4.0, 0.25f64..4.0),
        (0.25f64..4.0, 0.25f64..4.0, 0.5f64..2.0),
    )
        .prop_map(
            |((compute, matmul, link_intra, link_inter), (allreduce, optimizer, memory))| {
                Calibration {
                    compute,
                    ops: vec![("matmul".into(), matmul)],
                    link_intra,
                    link_inter,
                    allreduce,
                    optimizer,
                    memory,
                }
            },
        )
}

/// Run `law` against the analytical model and a calibrated model built
/// from `cal`, labelling failures with the model that broke.
fn for_both_models(cal: &Calibration, law: impl Fn(&dyn CostModel, &ClusterSpec, &str)) {
    let g = graph();
    let cluster = ClusterSpec::v100_cluster(2);
    let analytical = AnalyticalCost::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
    law(&analytical, &cluster, "analytical");
    let calibrated = CalibratedCost::new(
        &g,
        cluster.device.clone(),
        ProfilerOptions::fp32(),
        cal.clone(),
        &cluster,
    );
    law(&calibrated, &cluster, "calibrated");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transfer time is nondecreasing in bytes, on both link classes.
    #[test]
    fn transfer_time_nondecreasing_in_bytes(
        cal in calibrations(),
        a in 0usize..(1 << 28),
        b in 0usize..(1 << 28),
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        for_both_models(&cal, |m, cluster, label| {
            for link in [cluster.planning_link(), cluster.inter_link] {
                let t_lo = m.transfer_time(link, lo);
                let t_hi = m.transfer_time(link, hi);
                assert!(
                    t_lo <= t_hi,
                    "{label}: transfer({lo}) = {t_lo} > transfer({hi}) = {t_hi}"
                );
            }
        });
    }

    /// All-reduce time is nondecreasing in bytes and in group size, for
    /// intra-node and node-spanning groups alike.
    #[test]
    fn allreduce_time_nondecreasing_in_bytes_and_group(
        cal in calibrations(),
        a in 0usize..(1 << 28),
        b in 0usize..(1 << 28),
        g1 in 1usize..17,
        g2 in 1usize..17,
    ) {
        let (blo, bhi) = (a.min(b), a.max(b));
        let (glo, ghi) = (g1.min(g2), g1.max(g2));
        for_both_models(&cal, |m, cluster, label| {
            for spans in [false, true] {
                let by_bytes_lo = m.allreduce_time(cluster, blo, ghi, spans);
                let by_bytes_hi = m.allreduce_time(cluster, bhi, ghi, spans);
                assert!(
                    by_bytes_lo <= by_bytes_hi,
                    "{label}/spans={spans}: allreduce({blo} B) = {by_bytes_lo} \
                     > allreduce({bhi} B) = {by_bytes_hi}"
                );
                let by_group_lo = m.allreduce_time(cluster, bhi, glo, spans);
                let by_group_hi = m.allreduce_time(cluster, bhi, ghi, spans);
                assert!(
                    by_group_lo <= by_group_hi,
                    "{label}/spans={spans}: allreduce(group {glo}) = {by_group_lo} \
                     > allreduce(group {ghi}) = {by_group_hi}"
                );
            }
        });
    }

    /// Peak stage memory is nondecreasing in the micro-batch size and in
    /// the number of in-flight micro-batches, with and without gradient
    /// checkpointing.
    #[test]
    fn stage_memory_nondecreasing_in_batch_and_inflight(
        cal in calibrations(),
        mb1 in 1usize..33,
        mb2 in 1usize..33,
        if1 in 1usize..9,
        if2 in 1usize..9,
        ckpt in any::<bool>(),
    ) {
        let (mlo, mhi) = (mb1.min(mb2), mb1.max(mb2));
        let (ilo, ihi) = (if1.min(if2), if1.max(if2));
        for_both_models(&cal, |m, _cluster, label| {
            let set = whole_set(m.graph());
            let by_batch_lo = m.stage_cost(&set, mlo, ihi, ckpt).mem_bytes;
            let by_batch_hi = m.stage_cost(&set, mhi, ihi, ckpt).mem_bytes;
            assert!(
                by_batch_lo <= by_batch_hi,
                "{label}/ckpt={ckpt}: mem(mb {mlo}) = {by_batch_lo} \
                 > mem(mb {mhi}) = {by_batch_hi}"
            );
            let by_inflight_lo = m.stage_cost(&set, mhi, ilo, ckpt).mem_bytes;
            let by_inflight_hi = m.stage_cost(&set, mhi, ihi, ckpt).mem_bytes;
            assert!(
                by_inflight_lo <= by_inflight_hi,
                "{label}/ckpt={ckpt}: mem(inflight {ilo}) = {by_inflight_lo} \
                 > mem(inflight {ihi}) = {by_inflight_hi}"
            );
        });
    }

    /// `tp = 1` is the identity: the tensor-parallel stage cost must be
    /// bit-identical to the plain 2D stage cost on every field, for both
    /// models — the historical search path must not feel the third axis.
    #[test]
    fn tp_one_is_bit_identical_to_stage_cost(
        cal in calibrations(),
        mb in 1usize..17,
        inflight in 1usize..9,
        ckpt in any::<bool>(),
    ) {
        for_both_models(&cal, |m, cluster, label| {
            let set = whole_set(m.graph());
            let plain = m.stage_cost(&set, mb, inflight, ckpt);
            let tp = m.stage_cost_tp(&set, mb, inflight, ckpt, 1, cluster);
            assert!(
                plain.fwd_time.to_bits() == tp.fwd_time.to_bits()
                    && plain.bwd_time.to_bits() == tp.bwd_time.to_bits()
                    && plain.mem_bytes == tp.mem_bytes
                    && plain.param_elems == tp.param_elems,
                "{label}/ckpt={ckpt}: stage_cost_tp(.., 1) diverged from stage_cost"
            );
        });
    }

    /// Per-device stage memory is nonincreasing in the tensor-parallel
    /// degree (weights and optimizer state shard `1/T`, activations stay
    /// full-size), while `param_elems` always reports the FULL unsharded
    /// count — callers shard gradient volume themselves.
    #[test]
    fn tp_memory_nonincreasing_and_params_unsharded(
        cal in calibrations(),
        mb in 1usize..17,
        t1 in 1usize..9,
        t2 in 1usize..9,
        ckpt in any::<bool>(),
    ) {
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        for_both_models(&cal, |m, cluster, label| {
            let set = whole_set(m.graph());
            let full = m.stage_cost(&set, mb, 1, ckpt);
            let a = m.stage_cost_tp(&set, mb, 1, ckpt, lo, cluster);
            let b = m.stage_cost_tp(&set, mb, 1, ckpt, hi, cluster);
            assert!(
                b.mem_bytes <= a.mem_bytes,
                "{label}/ckpt={ckpt}: mem(T={hi}) = {} > mem(T={lo}) = {}",
                b.mem_bytes,
                a.mem_bytes
            );
            assert!(
                a.param_elems == full.param_elems && b.param_elems == full.param_elems,
                "{label}: param_elems must stay unsharded \
                 (T={lo}: {}, T={hi}: {}, full: {})",
                a.param_elems,
                b.param_elems,
                full.param_elems
            );
        });
    }

    /// The Megatron split math itself: raw per-shard compute (before the
    /// folded activation all-reduce) is nonincreasing in `T`; the stage
    /// cost charges the all-reduce symmetrically to forward and backward;
    /// and the per-micro-batch all-reduce volume is nondecreasing in the
    /// micro-batch size.
    #[test]
    fn tp_split_compute_and_allreduce_laws(
        mb1 in 1usize..17,
        mb2 in 1usize..17,
        t1 in 2usize..9,
        t2 in 2usize..9,
    ) {
        let (mlo, mhi) = (mb1.min(mb2), mb1.max(mb2));
        let (tlo, thi) = (t1.min(t2), t1.max(t2));
        let g = graph();
        let cluster = ClusterSpec::v100_cluster(2);
        let m = AnalyticalCost::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        let set = whole_set(m.graph());
        let p = m.profiler();

        let raw_lo = p.profile_set_tp(&set, mhi, 1, false, tlo);
        let raw_hi = p.profile_set_tp(&set, mhi, 1, false, thi);
        prop_assert!(
            raw_hi.fwd_time <= raw_lo.fwd_time && raw_hi.bwd_time <= raw_lo.bwd_time,
            "splitting wider got slower: T={tlo} ({}, {}) vs T={thi} ({}, {})",
            raw_lo.fwd_time, raw_lo.bwd_time, raw_hi.fwd_time, raw_hi.bwd_time
        );

        let full = m.stage_cost_tp(&set, mhi, 1, false, thi, &cluster);
        let dfwd = full.fwd_time - raw_hi.fwd_time;
        let dbwd = full.bwd_time - raw_hi.bwd_time;
        prop_assert!(
            dfwd >= 0.0 && (dfwd - dbwd).abs() <= 1e-12 * dfwd.max(1.0),
            "activation all-reduce charged asymmetrically: fwd +{dfwd}, bwd +{dbwd}"
        );

        let v_lo = p.tp_allreduce_bytes(&set, mlo);
        let v_hi = p.tp_allreduce_bytes(&set, mhi);
        prop_assert!(
            v_lo <= v_hi,
            "all-reduce volume shrank with the micro-batch: \
             {v_lo} B at mb {mlo} vs {v_hi} B at mb {mhi}"
        );
    }

    /// Optimizer time is nondecreasing in gradient bytes.
    #[test]
    fn optimizer_time_nondecreasing_in_bytes(
        cal in calibrations(),
        a in 0usize..(1 << 30),
        b in 0usize..(1 << 30),
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        for_both_models(&cal, |m, cluster, label| {
            let t_lo = m.optimizer_time(&cluster.device, lo);
            let t_hi = m.optimizer_time(&cluster.device, hi);
            assert!(
                t_lo <= t_hi,
                "{label}: optimizer({lo}) = {t_lo} > optimizer({hi}) = {t_hi}"
            );
        });
    }
}
