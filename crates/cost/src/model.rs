//! The [`CostModel`] trait and its two shipping implementations.

use crate::{Calibration, CostFactors};
use rannc_graph::{TaskGraph, TaskSet};
use rannc_hw::{ClusterSpec, DeviceSpec, LinkSpec};
use rannc_profile::{CacheStats, ProfileResult, Profiler, ProfilerOptions};

/// The single pricing interface for stage compute time, activation
/// transfer time, collective time, and peak memory.
///
/// The planner, the schedule simulators, the baselines, and fault
/// replanning all consume this trait, so a plan is priced by exactly the
/// same code whether it is being searched for, verified, or replayed.
/// Implementations must be `Sync`: the parallel `(S, MB)` sweep shares
/// one model across worker threads.
pub trait CostModel: Sync {
    /// The task graph this model prices.
    fn graph(&self) -> &TaskGraph;

    /// The profiling options (precision, overheads, noise) in effect.
    fn options(&self) -> &ProfilerOptions;

    /// The device model stages run on.
    fn device(&self) -> &DeviceSpec;

    /// The paper's `profile(U, batch)`: forward/backward time and peak
    /// memory of one candidate stage at a micro-batch size, with
    /// `inflight` micro-batches resident and optional checkpointing.
    fn stage_cost(
        &self,
        set: &TaskSet,
        batch: usize,
        inflight: usize,
        checkpointing: bool,
    ) -> ProfileResult;

    /// Tensor-parallel stage pricing: [`CostModel::stage_cost`] with the
    /// stage's splittable (matmul-bearing) compute divided across a
    /// `tp`-wide tensor-parallel group, weight/optimizer state sharded
    /// `tp` ways, activation buffers full-size, and the per-pass
    /// activation all-reduce over the group folded into the forward and
    /// backward times (which is why this variant needs the cluster).
    ///
    /// `tp == 1` must be bit-identical to [`CostModel::stage_cost`] —
    /// same float operations, same memo keys, same cache counters.
    fn stage_cost_tp(
        &self,
        set: &TaskSet,
        batch: usize,
        inflight: usize,
        checkpointing: bool,
        tp: usize,
        cluster: &ClusterSpec,
    ) -> ProfileResult;

    /// Activation bytes crossing the cut from `from` to `to` for one
    /// micro-batch, at activation precision.
    fn comm_bytes(&self, from: &TaskSet, to: &TaskSet, batch: usize) -> usize;

    /// Point-to-point transfer time of `bytes` over `link`. Pure α–β
    /// pricing: zero bytes still pays the link latency, exactly like
    /// [`LinkSpec::transfer_time`] (callers that want free empty cuts
    /// check for zero themselves, as they always have).
    fn transfer_time(&self, link: LinkSpec, bytes: usize) -> f64;

    /// Gradient all-reduce time over a replica group of `group` devices.
    /// The caller supplies the layout fact (`spans_nodes`) because each
    /// call site has its own placement invariant; link selection and the
    /// ring formula live in `rannc-hw`.
    fn allreduce_time(
        &self,
        cluster: &ClusterSpec,
        bytes: usize,
        group: usize,
        spans_nodes: bool,
    ) -> f64;

    /// Time for one optimizer (Adam) step over `grad_bytes` of
    /// gradients on `device`.
    fn optimizer_time(&self, device: &DeviceSpec, grad_bytes: usize) -> f64;

    /// Scalar factors for consumers that cannot hold a trait object
    /// (e.g. a serialized `PipelineSpec`). Identity for the analytical
    /// model.
    fn factors(&self) -> CostFactors {
        CostFactors::identity()
    }

    /// Memo-cache counters of the underlying profile oracle.
    fn cache_stats(&self) -> CacheStats;

    /// Hint that about `expected_sets` distinct task sets are about to be
    /// priced (the planner calls this with its block-range count before a
    /// sweep), letting the oracle pre-size its memo tables. Default:
    /// no-op — correctness never depends on it.
    fn reserve_profiles(&self, expected_sets: usize) {
        let _ = expected_sets;
    }

    /// Stable name of the pricing family, for reports and the explain
    /// artifact (`"analytical"` / `"calibrated"`) — the same tags
    /// `CostModelSpec::name` uses.
    fn name(&self) -> &'static str {
        "analytical"
    }
}

/// The raw profiler *is* the analytical oracle: this impl lets any code
/// already holding a [`Profiler`] pass it wherever a `&dyn CostModel`
/// is expected, with no wrapper and no second cache.
impl<'g> CostModel for Profiler<'g> {
    fn graph(&self) -> &TaskGraph {
        Profiler::graph(self)
    }

    fn options(&self) -> &ProfilerOptions {
        Profiler::options(self)
    }

    fn device(&self) -> &DeviceSpec {
        Profiler::device(self)
    }

    fn stage_cost(
        &self,
        set: &TaskSet,
        batch: usize,
        inflight: usize,
        checkpointing: bool,
    ) -> ProfileResult {
        self.profile_set(set, batch, inflight, checkpointing)
    }

    fn stage_cost_tp(
        &self,
        set: &TaskSet,
        batch: usize,
        inflight: usize,
        checkpointing: bool,
        tp: usize,
        cluster: &ClusterSpec,
    ) -> ProfileResult {
        if tp <= 1 {
            return self.profile_set(set, batch, inflight, checkpointing);
        }
        let mut r = self.profile_set_tp(set, batch, inflight, checkpointing, tp);
        let bytes = self.tp_allreduce_bytes(set, batch);
        if bytes > 0 {
            let ar = cluster.replica_allreduce_time(bytes, tp, tp > cluster.node.devices);
            r.fwd_time += ar;
            r.bwd_time += ar;
        }
        r
    }

    fn comm_bytes(&self, from: &TaskSet, to: &TaskSet, batch: usize) -> usize {
        Profiler::comm_bytes(self, from, to, batch)
    }

    fn transfer_time(&self, link: LinkSpec, bytes: usize) -> f64 {
        link.transfer_time(bytes)
    }

    fn allreduce_time(
        &self,
        cluster: &ClusterSpec,
        bytes: usize,
        group: usize,
        spans_nodes: bool,
    ) -> f64 {
        cluster.replica_allreduce_time(bytes, group, spans_nodes)
    }

    fn optimizer_time(&self, device: &DeviceSpec, grad_bytes: usize) -> f64 {
        device.optimizer_step_time(grad_bytes)
    }

    fn cache_stats(&self) -> CacheStats {
        Profiler::cache_stats(self)
    }

    fn reserve_profiles(&self, expected_sets: usize) {
        Profiler::reserve_profiles(self, expected_sets)
    }
}

/// The analytical cost model: today's [`Profiler`] roofline for stage
/// compute/memory plus the `rannc-hw` α–β and ring formulas, owned as
/// one object. Bit-identical to calling those APIs directly.
pub struct AnalyticalCost<'g> {
    profiler: Profiler<'g>,
}

impl<'g> AnalyticalCost<'g> {
    /// Build the model (and its memo cache) for one graph and device.
    pub fn new(g: &'g TaskGraph, device: DeviceSpec, opts: ProfilerOptions) -> Self {
        AnalyticalCost {
            profiler: Profiler::new(g, device, opts),
        }
    }

    /// Wrap an existing profiler, keeping its warm cache.
    pub fn from_profiler(profiler: Profiler<'g>) -> Self {
        AnalyticalCost { profiler }
    }

    /// The underlying profile oracle.
    pub fn profiler(&self) -> &Profiler<'g> {
        &self.profiler
    }
}

impl<'g> CostModel for AnalyticalCost<'g> {
    fn graph(&self) -> &TaskGraph {
        CostModel::graph(&self.profiler)
    }

    fn options(&self) -> &ProfilerOptions {
        CostModel::options(&self.profiler)
    }

    fn device(&self) -> &DeviceSpec {
        CostModel::device(&self.profiler)
    }

    fn stage_cost(
        &self,
        set: &TaskSet,
        batch: usize,
        inflight: usize,
        checkpointing: bool,
    ) -> ProfileResult {
        self.profiler
            .stage_cost(set, batch, inflight, checkpointing)
    }

    fn stage_cost_tp(
        &self,
        set: &TaskSet,
        batch: usize,
        inflight: usize,
        checkpointing: bool,
        tp: usize,
        cluster: &ClusterSpec,
    ) -> ProfileResult {
        self.profiler
            .stage_cost_tp(set, batch, inflight, checkpointing, tp, cluster)
    }

    fn comm_bytes(&self, from: &TaskSet, to: &TaskSet, batch: usize) -> usize {
        CostModel::comm_bytes(&self.profiler, from, to, batch)
    }

    fn transfer_time(&self, link: LinkSpec, bytes: usize) -> f64 {
        self.profiler.transfer_time(link, bytes)
    }

    fn allreduce_time(
        &self,
        cluster: &ClusterSpec,
        bytes: usize,
        group: usize,
        spans_nodes: bool,
    ) -> f64 {
        self.profiler
            .allreduce_time(cluster, bytes, group, spans_nodes)
    }

    fn optimizer_time(&self, device: &DeviceSpec, grad_bytes: usize) -> f64 {
        self.profiler.optimizer_time(device, grad_bytes)
    }

    fn cache_stats(&self) -> CacheStats {
        CostModel::cache_stats(&self.profiler)
    }

    fn reserve_profiles(&self, expected_sets: usize) {
        CostModel::reserve_profiles(&self.profiler, expected_sets)
    }
}

/// The analytical model with measured correction factors: per-operator
/// compute factors are applied inside the profiler's roofline, per-link
/// factors scale transfer and collective times, and an optional memory
/// factor scales the peak-memory estimate.
///
/// An identity [`Calibration`] prices bit-identically to
/// [`AnalyticalCost`].
pub struct CalibratedCost<'g> {
    profiler: Profiler<'g>,
    cal: Calibration,
    inter_link: LinkSpec,
}

impl<'g> CalibratedCost<'g> {
    /// Build the model. The cluster is consulted once, to learn which
    /// link is the inter-node one so per-link factors can be applied.
    pub fn new(
        g: &'g TaskGraph,
        device: DeviceSpec,
        opts: ProfilerOptions,
        cal: Calibration,
        cluster: &ClusterSpec,
    ) -> Self {
        let profiler = Profiler::new_scaled(g, device, opts, |op| cal.op_factor(op.name()));
        CalibratedCost {
            profiler,
            cal,
            inter_link: cluster.inter_link,
        }
    }

    /// The calibration in effect.
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// Per-link factor: the inter-node factor for the inter-node link,
    /// the intra-node factor for everything else.
    fn link_factor(&self, link: LinkSpec) -> f64 {
        if link == self.inter_link {
            self.cal.link_inter
        } else {
            self.cal.link_intra
        }
    }
}

impl<'g> CostModel for CalibratedCost<'g> {
    fn graph(&self) -> &TaskGraph {
        CostModel::graph(&self.profiler)
    }

    fn options(&self) -> &ProfilerOptions {
        CostModel::options(&self.profiler)
    }

    fn device(&self) -> &DeviceSpec {
        CostModel::device(&self.profiler)
    }

    fn stage_cost(
        &self,
        set: &TaskSet,
        batch: usize,
        inflight: usize,
        checkpointing: bool,
    ) -> ProfileResult {
        let mut r = self
            .profiler
            .stage_cost(set, batch, inflight, checkpointing);
        // guard the multiply so the identity calibration stays exact on
        // the integer round-trip
        if self.cal.memory != 1.0 {
            r.mem_bytes = (r.mem_bytes as f64 * self.cal.memory).round() as usize;
        }
        r
    }

    fn stage_cost_tp(
        &self,
        set: &TaskSet,
        batch: usize,
        inflight: usize,
        checkpointing: bool,
        tp: usize,
        cluster: &ClusterSpec,
    ) -> ProfileResult {
        if tp <= 1 {
            return self.stage_cost(set, batch, inflight, checkpointing);
        }
        let mut r = self
            .profiler
            .profile_set_tp(set, batch, inflight, checkpointing, tp);
        if self.cal.memory != 1.0 {
            r.mem_bytes = (r.mem_bytes as f64 * self.cal.memory).round() as usize;
        }
        // the TP activation all-reduce is priced through the *calibrated*
        // collective path, unlike the profiler's raw impl
        let bytes = self.profiler.tp_allreduce_bytes(set, batch);
        if bytes > 0 {
            let ar = self.allreduce_time(cluster, bytes, tp, tp > cluster.node.devices);
            r.fwd_time += ar;
            r.bwd_time += ar;
        }
        r
    }

    fn comm_bytes(&self, from: &TaskSet, to: &TaskSet, batch: usize) -> usize {
        // byte volumes are structural, not timed — never calibrated
        CostModel::comm_bytes(&self.profiler, from, to, batch)
    }

    fn transfer_time(&self, link: LinkSpec, bytes: usize) -> f64 {
        self.profiler.transfer_time(link, bytes) * self.link_factor(link)
    }

    fn allreduce_time(
        &self,
        cluster: &ClusterSpec,
        bytes: usize,
        group: usize,
        spans_nodes: bool,
    ) -> f64 {
        let link_factor = if spans_nodes {
            self.cal.link_inter
        } else {
            self.cal.link_intra
        };
        self.profiler
            .allreduce_time(cluster, bytes, group, spans_nodes)
            * self.cal.allreduce
            * link_factor
    }

    fn optimizer_time(&self, device: &DeviceSpec, grad_bytes: usize) -> f64 {
        self.profiler.optimizer_time(device, grad_bytes) * self.cal.optimizer
    }

    fn factors(&self) -> CostFactors {
        CostFactors {
            compute: self.cal.compute,
            transfer: self.cal.link_intra,
            allreduce_intra: self.cal.allreduce * self.cal.link_intra,
            allreduce_inter: self.cal.allreduce * self.cal.link_inter,
            optimizer: self.cal.optimizer,
        }
    }

    fn cache_stats(&self) -> CacheStats {
        CostModel::cache_stats(&self.profiler)
    }

    fn reserve_profiles(&self, expected_sets: usize) {
        CostModel::reserve_profiles(&self.profiler, expected_sets)
    }

    fn name(&self) -> &'static str {
        "calibrated"
    }
}

/// Which cost model a run should price plans with — the configuration
/// value behind the CLI's `--cost-model` flag.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum CostModelSpec {
    /// The pure analytical model (the default).
    #[default]
    Analytical,
    /// The analytical model corrected by a calibration.
    Calibrated(Calibration),
}

impl CostModelSpec {
    /// Construct the chosen model for one graph/device/cluster.
    pub fn build<'g>(
        &self,
        g: &'g TaskGraph,
        device: DeviceSpec,
        opts: ProfilerOptions,
        cluster: &ClusterSpec,
    ) -> Box<dyn CostModel + 'g> {
        match self {
            CostModelSpec::Analytical => Box::new(AnalyticalCost::new(g, device, opts)),
            CostModelSpec::Calibrated(cal) => {
                Box::new(CalibratedCost::new(g, device, opts, cal.clone(), cluster))
            }
        }
    }

    /// Short display name for reports and stats.
    pub fn name(&self) -> &'static str {
        match self {
            CostModelSpec::Analytical => "analytical",
            CostModelSpec::Calibrated(_) => "calibrated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rannc_graph::TaskId;
    use rannc_models::{bert_graph, BertConfig};

    fn whole_set(g: &TaskGraph) -> TaskSet {
        TaskSet::from_ids(g.num_tasks(), g.task_ids())
    }

    fn half_sets(g: &TaskGraph) -> (TaskSet, TaskSet) {
        let n = g.num_tasks();
        let half = n / 2;
        (
            TaskSet::from_ids(n, (0..half as u32).map(TaskId)),
            TaskSet::from_ids(n, (half as u32..n as u32).map(TaskId)),
        )
    }

    #[test]
    fn analytical_matches_raw_profiler_bitwise() {
        let g = bert_graph(&BertConfig::tiny());
        let cluster = ClusterSpec::v100_cluster(2);
        let raw = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        let model = AnalyticalCost::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        let s = whole_set(&g);
        let a = raw.profile_set(&s, 8, 4, true);
        let b = model.stage_cost(&s, 8, 4, true);
        assert_eq!(a.fwd_time.to_bits(), b.fwd_time.to_bits());
        assert_eq!(a.bwd_time.to_bits(), b.bwd_time.to_bits());
        assert_eq!(a.mem_bytes, b.mem_bytes);

        let (from, to) = half_sets(&g);
        assert_eq!(
            Profiler::comm_bytes(&raw, &from, &to, 8),
            model.comm_bytes(&from, &to, 8)
        );
        let link = cluster.planning_link();
        assert_eq!(
            link.transfer_time(1 << 20).to_bits(),
            model.transfer_time(link, 1 << 20).to_bits()
        );
        for spans in [false, true] {
            assert_eq!(
                cluster.replica_allreduce_time(1 << 26, 4, spans).to_bits(),
                model.allreduce_time(&cluster, 1 << 26, 4, spans).to_bits()
            );
        }
        assert_eq!(
            cluster.device.optimizer_step_time(1 << 26).to_bits(),
            model.optimizer_time(&cluster.device, 1 << 26).to_bits()
        );
    }

    #[test]
    fn identity_calibration_matches_analytical_bitwise() {
        let g = bert_graph(&BertConfig::tiny());
        let cluster = ClusterSpec::v100_cluster(2);
        let analytical = AnalyticalCost::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        let calibrated = CalibratedCost::new(
            &g,
            cluster.device.clone(),
            ProfilerOptions::fp32(),
            Calibration::identity(),
            &cluster,
        );
        let s = whole_set(&g);
        let a = analytical.stage_cost(&s, 8, 4, true);
        let b = calibrated.stage_cost(&s, 8, 4, true);
        assert_eq!(a.fwd_time.to_bits(), b.fwd_time.to_bits());
        assert_eq!(a.bwd_time.to_bits(), b.bwd_time.to_bits());
        assert_eq!(a.mem_bytes, b.mem_bytes);
        let link = cluster.planning_link();
        assert_eq!(
            analytical.transfer_time(link, 123_456).to_bits(),
            calibrated.transfer_time(link, 123_456).to_bits()
        );
        for spans in [false, true] {
            assert_eq!(
                analytical
                    .allreduce_time(&cluster, 1 << 26, 8, spans)
                    .to_bits(),
                calibrated
                    .allreduce_time(&cluster, 1 << 26, 8, spans)
                    .to_bits()
            );
        }
        assert_eq!(
            analytical
                .optimizer_time(&cluster.device, 1 << 26)
                .to_bits(),
            calibrated
                .optimizer_time(&cluster.device, 1 << 26)
                .to_bits()
        );
        assert_eq!(calibrated.factors(), CostFactors::identity());
    }

    #[test]
    fn calibration_factors_move_every_quantity() {
        let g = bert_graph(&BertConfig::tiny());
        let cluster = ClusterSpec::v100_cluster(2);
        let cal = Calibration {
            compute: 1.5,
            ops: vec![("matmul".into(), 2.0)],
            link_intra: 1.2,
            link_inter: 2.5,
            allreduce: 1.3,
            optimizer: 1.4,
            memory: 1.1,
        };
        let analytical = AnalyticalCost::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        let calibrated = CalibratedCost::new(
            &g,
            cluster.device.clone(),
            ProfilerOptions::fp32(),
            cal,
            &cluster,
        );
        let s = whole_set(&g);
        let a = analytical.stage_cost(&s, 8, 4, false);
        let b = calibrated.stage_cost(&s, 8, 4, false);
        assert!(b.fwd_time > a.fwd_time);
        assert!(b.mem_bytes > a.mem_bytes);
        let intra = cluster.planning_link();
        assert!(
            calibrated.transfer_time(intra, 1 << 20) > analytical.transfer_time(intra, 1 << 20)
        );
        assert!(
            calibrated.transfer_time(cluster.inter_link, 1 << 20)
                > analytical.transfer_time(cluster.inter_link, 1 << 20) * 2.0
        );
        assert!(
            calibrated.allreduce_time(&cluster, 1 << 26, 4, true)
                > analytical.allreduce_time(&cluster, 1 << 26, 4, true) * 3.0
        );
        assert!(
            calibrated.optimizer_time(&cluster.device, 1 << 26)
                > analytical.optimizer_time(&cluster.device, 1 << 26)
        );
    }

    #[test]
    fn spec_builds_both_models() {
        let g = bert_graph(&BertConfig::tiny());
        let cluster = ClusterSpec::v100_cluster(2);
        let s = whole_set(&g);
        let analytical = CostModelSpec::Analytical.build(
            &g,
            cluster.device.clone(),
            ProfilerOptions::fp32(),
            &cluster,
        );
        assert_eq!(CostModelSpec::Analytical.name(), "analytical");
        let cal = Calibration {
            compute: 2.0,
            ..Calibration::identity()
        };
        let spec = CostModelSpec::Calibrated(cal);
        assert_eq!(spec.name(), "calibrated");
        let calibrated = spec.build(
            &g,
            cluster.device.clone(),
            ProfilerOptions::fp32(),
            &cluster,
        );
        let a = analytical.stage_cost(&s, 4, 1, false);
        let b = calibrated.stage_cost(&s, 4, 1, false);
        assert!(b.fwd_time > a.fwd_time);
        assert_eq!(a.param_elems, b.param_elems);
    }
}
