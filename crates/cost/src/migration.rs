//! Migration-cost model: what a replan *costs to adopt*.
//!
//! When churn forces a new partition, the cluster does not get the new
//! plan for free: every parameter that lands on a different device group
//! must be shipped over the interconnect together with its FP32 master
//! copy and Adam moments, and training stands still while the transfer
//! and pipeline re-fill happen. This module prices that adoption so the
//! replanning policy can weigh "better steady-state plan" against
//! "steps of training lost switching to it".
//!
//! The formula, documented in DESIGN.md §12:
//!
//! ```text
//! param_bytes     = moved_elems · (weight + master-copy bytes/elem)
//! optimizer_bytes = moved_elems · 8            (Adam FP32 moments)
//! transfer_time   = latency + (param_bytes + optimizer_bytes) / bandwidth
//! downtime_steps  = ceil((transfer_time + refill_time) / iteration_time)
//! ```
//!
//! where the link is the cluster's conservative planning interconnect
//! (slowest inter-node link when nodes span, per the same footnote-3
//! pessimism the planner uses) and `refill_time` is one fill–drain
//! pipeline ramp (`(S − 1) · bottleneck`).

use rannc_hw::{ClusterSpec, LinkSpec, Precision};
use rannc_profile::memory::ADAM_BYTES_PER_PARAM;
use serde::{Deserialize, Serialize};

/// Priced cost of migrating state to adopt a new plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Weight bytes moved (compute-precision weights + FP32 master copy).
    pub param_bytes: usize,
    /// Optimizer-state bytes moved (Adam FP32 moments).
    pub optimizer_bytes: usize,
    /// Wall-clock seconds the transfer takes on the migration link.
    pub transfer_time: f64,
    /// Whole training iterations lost to the switch (transfer plus one
    /// pipeline re-fill, rounded up; at least 1 when anything moves).
    pub downtime_steps: usize,
}

impl MigrationCost {
    /// The zero cost: nothing moved, nothing lost.
    pub fn zero() -> Self {
        MigrationCost {
            param_bytes: 0,
            optimizer_bytes: 0,
            transfer_time: 0.0,
            downtime_steps: 0,
        }
    }

    /// Total bytes crossing the interconnect.
    pub fn total_bytes(&self) -> usize {
        self.param_bytes + self.optimizer_bytes
    }

    /// Wall-clock seconds of lost training the switch costs.
    pub fn downtime(&self, iteration_time: f64) -> f64 {
        self.downtime_steps as f64 * iteration_time
    }
}

/// Prices plan migrations for one cluster + precision regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationModel {
    /// Link the moved state crosses.
    pub link: LinkSpec,
    /// Training precision (sets bytes per parameter element).
    pub precision: Precision,
}

impl MigrationModel {
    /// Model for a cluster: single-node clusters migrate over the intra
    /// link, multi-node clusters over the slowest inter-node link (the
    /// conservative choice — state may cross any pair of nodes).
    pub fn for_cluster(cluster: &ClusterSpec, precision: Precision) -> Self {
        let link = if cluster.nodes > 1 {
            cluster.slowest_inter_link()
        } else {
            cluster.slowest_intra_link()
        };
        MigrationModel { link, precision }
    }

    /// Weight bytes per moved parameter element (compute-precision copy
    /// plus the FP32 master copy under mixed precision).
    pub fn weight_bytes_per_param(&self) -> usize {
        self.precision.weight_bytes() + self.precision.master_copy_bytes()
    }

    /// Price moving `moved_elems` parameter elements, for a pipeline of
    /// `stages` stages with the given bottleneck and iteration time.
    ///
    /// Zero moved elements is genuinely free: no transfer, no re-fill,
    /// no downtime — adopting a plan identical to the current one must
    /// never be charged.
    pub fn price(
        &self,
        moved_elems: usize,
        stages: usize,
        bottleneck: f64,
        iteration_time: f64,
    ) -> MigrationCost {
        if moved_elems == 0 {
            return MigrationCost::zero();
        }
        let param_bytes = moved_elems * self.weight_bytes_per_param();
        let optimizer_bytes = moved_elems * ADAM_BYTES_PER_PARAM;
        let transfer_time = self.link.transfer_time(param_bytes + optimizer_bytes);
        let refill = stages.saturating_sub(1) as f64 * bottleneck;
        let downtime_steps = if iteration_time > 0.0 {
            ((transfer_time + refill) / iteration_time).ceil().max(1.0) as usize
        } else {
            1
        };
        MigrationCost {
            param_bytes,
            optimizer_bytes,
            transfer_time,
            downtime_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_move_is_free() {
        let m = MigrationModel::for_cluster(&ClusterSpec::v100_cluster(2), Precision::Mixed);
        let c = m.price(0, 4, 0.1, 0.5);
        assert_eq!(c, MigrationCost::zero());
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.downtime(0.5), 0.0);
    }

    #[test]
    fn mixed_precision_moves_weights_master_and_moments() {
        let m = MigrationModel::for_cluster(&ClusterSpec::v100_cluster(2), Precision::Mixed);
        // mixed: 2-byte weights + 4-byte master copy
        assert_eq!(m.weight_bytes_per_param(), 6);
        let c = m.price(1_000_000, 4, 0.1, 0.5);
        assert_eq!(c.param_bytes, 6_000_000);
        assert_eq!(c.optimizer_bytes, 8_000_000);
        assert!(c.transfer_time > 0.0);
        assert!(c.downtime_steps >= 1);
    }

    #[test]
    fn single_node_migrates_over_the_intra_link() {
        let single = MigrationModel::for_cluster(&ClusterSpec::v100_cluster(1), Precision::FP32);
        let multi = MigrationModel::for_cluster(&ClusterSpec::v100_cluster(2), Precision::FP32);
        assert!(single.link.bandwidth > multi.link.bandwidth);
        // same payload, slower link, longer transfer
        let a = single.price(1 << 24, 2, 0.1, 0.5);
        let b = multi.price(1 << 24, 2, 0.1, 0.5);
        assert!(a.transfer_time < b.transfer_time);
    }

    #[test]
    fn downtime_includes_pipeline_refill() {
        let m = MigrationModel::for_cluster(&ClusterSpec::v100_cluster(2), Precision::FP32);
        // tiny payload: transfer is negligible, refill dominates
        let shallow = m.price(1, 1, 1.0, 1.0);
        let deep = m.price(1, 9, 1.0, 1.0);
        assert!(deep.downtime_steps > shallow.downtime_steps);
        assert_eq!(shallow.downtime_steps, 1); // floor: a switch never costs 0 steps
    }
}
