//! The frozen JSON calibration-file schema for [`CalibratedCost`].
//!
//! A calibration file records multiplicative correction factors fitted
//! against measurements (e.g. from `rannc-obs` trace exports). The
//! schema is *frozen* at version 1, like the §10 observability event
//! schema: readers reject unknown top-level keys and unknown versions so
//! a stale planner never silently misreads a newer file.
//!
//! ```json
//! {
//!   "version": 1,
//!   "compute": 1.0,
//!   "ops": { "matmul": 1.12, "softmax": 0.95 },
//!   "links": { "intra": 1.0, "inter": 1.25 },
//!   "allreduce": 1.05,
//!   "optimizer": 1.0,
//!   "memory": 1.0
//! }
//! ```
//!
//! Every field except `version` is optional and defaults to the identity
//! factor `1.0`. `ops` keys are [`rannc_graph::OpKind::name`] strings.
//!
//! [`CalibratedCost`]: crate::CalibratedCost

use rannc_obs::json::{self, Value};
use std::fmt;
use std::path::Path;

/// The only calibration-file schema version this build reads or writes.
pub const CALIBRATION_VERSION: u64 = 1;

/// Multiplicative correction factors for the analytical cost model.
///
/// The identity calibration (all factors `1.0`, no per-op entries)
/// reproduces [`AnalyticalCost`](crate::AnalyticalCost) bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Global factor on modelled kernel time, composed with `ops`.
    pub compute: f64,
    /// Per-operator factors keyed by [`rannc_graph::OpKind::name`],
    /// in file order.
    pub ops: Vec<(String, f64)>,
    /// Factor on times over the intra-node link (NVLink).
    pub link_intra: f64,
    /// Factor on times over the inter-node link (InfiniBand).
    pub link_inter: f64,
    /// Factor on gradient all-reduce time, composed with the link factor
    /// of the link the ring runs over.
    pub allreduce: f64,
    /// Factor on optimizer-step time.
    pub optimizer: f64,
    /// Factor on estimated peak stage memory.
    pub memory: f64,
}

impl Calibration {
    /// The identity calibration: no correction anywhere.
    pub fn identity() -> Self {
        Calibration {
            compute: 1.0,
            ops: Vec::new(),
            link_intra: 1.0,
            link_inter: 1.0,
            allreduce: 1.0,
            optimizer: 1.0,
            memory: 1.0,
        }
    }

    /// Compute-time factor for one operator: the global `compute` factor
    /// composed with the operator's own entry (first match wins).
    pub fn op_factor(&self, op_name: &str) -> f64 {
        let per_op = self
            .ops
            .iter()
            .find(|(name, _)| name == op_name)
            .map(|&(_, f)| f)
            .unwrap_or(1.0);
        self.compute * per_op
    }

    /// Whether every factor is the identity (the resulting model prices
    /// exactly like the analytical one).
    pub fn is_identity(&self) -> bool {
        self.compute == 1.0
            && self.link_intra == 1.0
            && self.link_inter == 1.0
            && self.allreduce == 1.0
            && self.optimizer == 1.0
            && self.memory == 1.0
            && self.ops.iter().all(|&(_, f)| f == 1.0)
    }

    /// Serialize to the frozen version-1 JSON schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", CALIBRATION_VERSION));
        out.push_str(&format!(
            "  \"compute\": {},\n",
            json::fmt_f64(self.compute)
        ));
        out.push_str("  \"ops\": {");
        for (i, (name, f)) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {}",
                json::escape(name),
                json::fmt_f64(*f)
            ));
        }
        if !self.ops.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"links\": {{ \"intra\": {}, \"inter\": {} }},\n",
            json::fmt_f64(self.link_intra),
            json::fmt_f64(self.link_inter)
        ));
        out.push_str(&format!(
            "  \"allreduce\": {},\n",
            json::fmt_f64(self.allreduce)
        ));
        out.push_str(&format!(
            "  \"optimizer\": {},\n",
            json::fmt_f64(self.optimizer)
        ));
        out.push_str(&format!("  \"memory\": {}\n", json::fmt_f64(self.memory)));
        out.push('}');
        out
    }

    /// Parse a version-1 calibration document, rejecting unknown keys,
    /// unknown versions, and non-positive factors.
    pub fn from_json(s: &str) -> Result<Self, CalibrationError> {
        let doc = json::parse(s).map_err(|e| CalibrationError::Parse(e.to_string()))?;
        let fields = match &doc {
            Value::Obj(fields) => fields,
            _ => {
                return Err(CalibrationError::Schema(
                    "document must be an object".into(),
                ))
            }
        };
        let mut cal = Calibration::identity();
        let mut saw_version = false;
        for (key, value) in fields {
            match key.as_str() {
                "version" => {
                    let v = value.as_f64().ok_or_else(|| {
                        CalibrationError::Schema("version must be a number".into())
                    })?;
                    if v != CALIBRATION_VERSION as f64 {
                        return Err(CalibrationError::Schema(format!(
                            "unsupported version {v} (this build reads {CALIBRATION_VERSION})"
                        )));
                    }
                    saw_version = true;
                }
                "compute" => cal.compute = factor(key, value)?,
                "ops" => {
                    let entries = match value {
                        Value::Obj(entries) => entries,
                        _ => {
                            return Err(CalibrationError::Schema("ops must be an object".into()));
                        }
                    };
                    for (op, f) in entries {
                        cal.ops.push((op.clone(), factor(op, f)?));
                    }
                }
                "links" => {
                    let entries = match value {
                        Value::Obj(entries) => entries,
                        _ => {
                            return Err(CalibrationError::Schema("links must be an object".into()));
                        }
                    };
                    for (link, f) in entries {
                        match link.as_str() {
                            "intra" => cal.link_intra = factor(link, f)?,
                            "inter" => cal.link_inter = factor(link, f)?,
                            other => {
                                return Err(CalibrationError::Schema(format!(
                                    "unknown link \"{other}\" (expected \"intra\"/\"inter\")"
                                )));
                            }
                        }
                    }
                }
                "allreduce" => cal.allreduce = factor(key, value)?,
                "optimizer" => cal.optimizer = factor(key, value)?,
                "memory" => cal.memory = factor(key, value)?,
                other => {
                    return Err(CalibrationError::Schema(format!(
                        "unknown key \"{other}\" in calibration file"
                    )));
                }
            }
        }
        if !saw_version {
            return Err(CalibrationError::Schema("missing \"version\"".into()));
        }
        Ok(cal)
    }

    /// Load a calibration file from disk.
    pub fn load(path: &Path) -> Result<Self, CalibrationError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CalibrationError::Io(format!("{}: {e}", path.display())))?;
        Calibration::from_json(&text)
    }

    /// Write the calibration file to disk.
    pub fn save(&self, path: &Path) -> Result<(), CalibrationError> {
        std::fs::write(path, self.to_json())
            .map_err(|e| CalibrationError::Io(format!("{}: {e}", path.display())))
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::identity()
    }
}

/// A positive finite factor, or a schema error naming the field.
fn factor(key: &str, value: &Value) -> Result<f64, CalibrationError> {
    let f = value
        .as_f64()
        .ok_or_else(|| CalibrationError::Schema(format!("\"{key}\" must be a number")))?;
    if !f.is_finite() || f <= 0.0 {
        return Err(CalibrationError::Schema(format!(
            "\"{key}\" must be a positive finite factor, got {f}"
        )));
    }
    Ok(f)
}

/// Why a calibration file could not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// The file could not be read or written.
    Io(String),
    /// The document is not well-formed JSON.
    Parse(String),
    /// The document is valid JSON but violates the frozen schema.
    Schema(String),
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::Io(m) => write!(f, "calibration io error: {m}"),
            CalibrationError::Parse(m) => write!(f, "calibration parse error: {m}"),
            CalibrationError::Schema(m) => write!(f, "calibration schema error: {m}"),
        }
    }
}

impl std::error::Error for CalibrationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Calibration {
        Calibration {
            compute: 1.05,
            ops: vec![("matmul".into(), 1.12), ("softmax".into(), 0.95)],
            link_intra: 1.01,
            link_inter: 1.25,
            allreduce: 1.07,
            optimizer: 0.9,
            memory: 1.1,
        }
    }

    #[test]
    fn round_trips_exactly() {
        let cal = sample();
        let parsed = Calibration::from_json(&cal.to_json()).expect("round trip");
        assert_eq!(parsed, cal);
        // identity round-trips too, and stays identity
        let id = Calibration::identity();
        let parsed = Calibration::from_json(&id.to_json()).expect("identity round trip");
        assert_eq!(parsed, id);
        assert!(parsed.is_identity());
    }

    #[test]
    fn missing_fields_default_to_identity() {
        let cal = Calibration::from_json(r#"{"version": 1}"#).expect("minimal");
        assert_eq!(cal, Calibration::identity());
        let cal =
            Calibration::from_json(r#"{"version": 1, "ops": {"matmul": 2.0}}"#).expect("partial");
        assert_eq!(cal.op_factor("matmul"), 2.0);
        assert_eq!(cal.op_factor("gelu"), 1.0);
        assert!(!cal.is_identity());
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(
            Calibration::from_json("[1,2]"),
            Err(CalibrationError::Schema(_))
        ));
        assert!(matches!(
            Calibration::from_json(r#"{"version": 2}"#),
            Err(CalibrationError::Schema(_))
        ));
        assert!(matches!(
            Calibration::from_json(r#"{"compute": 1.0}"#),
            Err(CalibrationError::Schema(_))
        ));
        assert!(matches!(
            Calibration::from_json(r#"{"version": 1, "typo": 1.0}"#),
            Err(CalibrationError::Schema(_))
        ));
        assert!(matches!(
            Calibration::from_json(r#"{"version": 1, "compute": -1.0}"#),
            Err(CalibrationError::Schema(_))
        ));
        assert!(matches!(
            Calibration::from_json(r#"{"version": 1, "links": {"wan": 2.0}}"#),
            Err(CalibrationError::Schema(_))
        ));
        assert!(matches!(
            Calibration::from_json("{"),
            Err(CalibrationError::Parse(_))
        ));
    }

    #[test]
    fn op_factor_composes_with_global_compute() {
        let cal = sample();
        assert_eq!(cal.op_factor("matmul"), 1.05 * 1.12);
        assert_eq!(cal.op_factor("gelu"), 1.05);
    }

    #[test]
    fn truncated_file_on_disk_is_a_typed_error() {
        let dir = std::env::temp_dir().join("rannc_calibration_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.json");
        let full = sample().to_json();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            Calibration::load(&path),
            Err(CalibrationError::Parse(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_utf8_file_is_a_typed_error() {
        let dir = std::env::temp_dir().join("rannc_calibration_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("binary.json");
        std::fs::write(&path, [0xffu8, 0xfe, 0x80, 0x00]).unwrap();
        // read_to_string rejects non-UTF8 bytes as an I/O error
        let err = Calibration::load(&path).unwrap_err();
        assert!(matches!(err, CalibrationError::Io(_)), "got {err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let err = Calibration::load(Path::new("/nonexistent/rannc/cal.json")).unwrap_err();
        assert!(matches!(err, CalibrationError::Io(_)));
        assert!(err.to_string().contains("cal.json"));
    }
}
