//! Tensor-parallel split math — the single owner of the Megatron-style
//! column/row-parallel formulas.
//!
//! Historically these formulas lived in `rannc-baselines`' Megatron
//! model, where the partition search could never price them. Lifting
//! intra-op partitioning into the planner as a per-stage degree `T`
//! requires one owner for the split arithmetic, so the analytic
//! transformer evaluation moved here: the Megatron baseline is now a
//! thin sweep over [`megatron_partition`] (the `S = 1` fixed point of
//! the unified 3D search), and the planner's generic per-stage TP
//! pricing ([`CostModel::stage_cost_tp`]) shares the same conventions —
//! compute divided `T` ways per matmul-bearing op, weight/optimizer
//! state sharded, full-size activation buffers, and a per-pass
//! activation all-reduce over the `T`-group.

use crate::CostModel;
use rannc_hw::{ClusterSpec, Precision};
use rannc_profile::memory::{ADAM_BYTES_PER_PARAM, DEVICE_OVERHEAD_BYTES};

/// Memory-overhead factor on activations: PyTorch's caching allocator
/// fragments under Megatron's alternating full-size/partitioned buffer
/// sizes, and each tensor-parallel group pins NCCL workspaces. Real
/// Megatron-LM deployments reserve this headroom; without it the analytic
/// model would fit models the real system could not (the paper's Fig. 4
/// shows Megatron failing at ~1/5 of RaNNC's largest model).
pub const ALLOCATOR_OVERHEAD: f64 = 1.15;

/// Transformer shape parameters (all the split math needs to know).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerDims {
    /// Hidden size.
    pub hidden: usize,
    /// Encoder/decoder layers.
    pub layers: usize,
    /// Attention heads (tensor parallelism splits heads; `T` must divide
    /// this).
    pub heads: usize,
    /// FFN intermediate size.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq_len: usize,
}

impl From<&rannc_models::BertConfig> for TransformerDims {
    fn from(c: &rannc_models::BertConfig) -> Self {
        TransformerDims {
            hidden: c.hidden,
            layers: c.layers,
            heads: c.heads,
            intermediate: c.intermediate,
            vocab: c.vocab,
            seq_len: c.seq_len,
        }
    }
}

impl From<&rannc_models::GptConfig> for TransformerDims {
    fn from(c: &rannc_models::GptConfig) -> Self {
        TransformerDims {
            hidden: c.hidden,
            layers: c.layers,
            heads: c.heads,
            intermediate: 4 * c.hidden,
            vocab: c.vocab,
            seq_len: c.seq_len,
        }
    }
}

impl TransformerDims {
    /// Total trainable parameters.
    pub fn params(&self) -> usize {
        let h = self.hidden;
        let per_layer = 4 * h * h + 2 * h * self.intermediate;
        self.layers * per_layer + self.vocab * h + self.seq_len * h
    }

    /// Forward FLOPs for one sample.
    pub fn flops_per_sample(&self) -> f64 {
        let (h, s, i) = (
            self.hidden as f64,
            self.seq_len as f64,
            self.intermediate as f64,
        );
        let per_layer = 8.0 * s * h * h + 4.0 * s * s * h + 4.0 * s * h * i;
        self.layers as f64 * per_layer + 2.0 * s * h * self.vocab as f64
    }
}

/// Evaluate the Megatron-LM analytic model at a specific partition count
/// `t` — the `(S = 1, T = t)` point of the unified parallelism space.
///
/// Returns `(iteration_time, mem_bytes)` or `None` when infeasible
/// structurally (t doesn't divide heads/devices, or the data-parallel
/// width doesn't divide the batch).
pub fn megatron_partition(
    dims: &TransformerDims,
    cost: &dyn CostModel,
    cluster: &ClusterSpec,
    batch_size: usize,
    precision: Precision,
    t: usize,
) -> Option<(f64, usize)> {
    let devices = cluster.total_devices();
    if t > devices || !dims.heads.is_multiple_of(t) || !devices.is_multiple_of(t) {
        return None;
    }
    let dp = devices / t;
    if !batch_size.is_multiple_of(dp) {
        return None;
    }
    let b = batch_size / dp; // per tensor-parallel group, resident at once
    let dev = &cluster.device;
    let act_bytes = precision.activation_bytes();
    let (h, s) = (dims.hidden, dims.seq_len);

    // --- time -----------------------------------------------------------
    let flops = dims.flops_per_sample() * b as f64 / t as f64;
    let fwd = flops / dev.sustained_flops(precision);
    // gradient checkpointing implemented for Megatron (§IV-A): backward =
    // recompute + dgrad + wgrad ≈ 3x forward
    let compute = fwd * 4.0;
    // 2 activation all-reduces per layer per pass, 4 per layer total
    let ar_bytes = b * s * h * act_bytes;
    let comm = 4.0
        * dims.layers as f64
        * cost.allreduce_time(cluster, ar_bytes, t, t > cluster.node.devices);
    // data-parallel gradient all-reduce of each shard
    let grad_bytes = dims.params() * 4 / t;
    let dp_allreduce = if dp > 1 {
        cost.allreduce_time(cluster, grad_bytes, dp, true)
    } else {
        0.0
    };
    let optimizer = cost.optimizer_time(dev, grad_bytes);
    let iteration = compute + comm + dp_allreduce + optimizer;

    // --- memory ----------------------------------------------------------
    let state_per_param = precision.weight_bytes()
        + precision.master_copy_bytes()
        + precision.grad_bytes()
        + ADAM_BYTES_PER_PARAM;
    let states = dims.params() / t * state_per_param;
    // checkpointed layer boundaries: FULL size on every device (the
    // "result buffer is not reduced" effect), one per layer per sample
    let boundaries = dims.layers * s * h * act_bytes * b;
    // recompute peak of one layer: full-size I/O tensors plus partitioned
    // intermediates (scores + FFN intermediate)
    let full_io = 8 * s * h;
    let partitioned = (2 * s * s * dims.heads + 2 * s * dims.intermediate) / t;
    let recompute = (full_io + partitioned) * act_bytes * b;
    // vocab-parallel logits buffer of the LM head
    let logits = s * dims.vocab / t * act_bytes * b;
    let activations = ((boundaries + recompute + logits) as f64 * ALLOCATOR_OVERHEAD) as usize;
    let mem = states + activations + DEVICE_OVERHEAD_BYTES;

    Some((iteration, mem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalyticalCost;
    use rannc_models::BertConfig;
    use rannc_profile::ProfilerOptions;

    fn cluster() -> ClusterSpec {
        ClusterSpec::v100_cluster(4)
    }

    fn analytic_cost<'g>(
        g: &'g rannc_graph::TaskGraph,
        cluster: &ClusterSpec,
    ) -> AnalyticalCost<'g> {
        AnalyticalCost::new(g, cluster.device.clone(), ProfilerOptions::fp32())
    }

    #[test]
    fn partition_infeasible_when_t_does_not_divide() {
        let g = rannc_graph::TaskGraph::new("empty");
        let cl = cluster();
        let cost = analytic_cost(&g, &cl);
        let dims = TransformerDims::from(&BertConfig::large());
        // 3 does not divide 16 heads
        assert!(megatron_partition(&dims, &cost, &cl, 256, Precision::FP32, 3).is_none());
        // t beyond the device count
        assert!(megatron_partition(&dims, &cost, &cl, 256, Precision::FP32, 64).is_none());
    }

    #[test]
    fn larger_t_shrinks_states_and_compute() {
        let g = rannc_graph::TaskGraph::new("empty");
        let cl = cluster();
        let cost = analytic_cost(&g, &cl);
        let dims = TransformerDims::from(&BertConfig::large());
        let (_, m1) = megatron_partition(&dims, &cost, &cl, 256, Precision::FP32, 1).unwrap();
        let (_, m4) = megatron_partition(&dims, &cost, &cl, 256, Precision::FP32, 4).unwrap();
        assert!(m4 < m1, "t=4 memory {m4} should be below t=1 memory {m1}");
    }
}
