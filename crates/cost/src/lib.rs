//! Pluggable cost models — the single pricing layer for the planner,
//! the simulators, the baselines, and fault replanning.
//!
//! RaNNC's partitioner is driven by one conceptual oracle: `profile(U,
//! batch)` for stage compute and memory, an α–β link model for
//! activation transfers, and a ring model for gradient all-reduce. This
//! crate gathers those formulas behind the [`CostModel`] trait so every
//! consumer prices a plan through exactly the same code path. Two
//! implementations ship:
//!
//! * [`AnalyticalCost`] — today's [`Profiler`] roofline plus the
//!   `rannc-hw` link/collective formulas, bit-identical to calling them
//!   directly;
//! * [`CalibratedCost`] — the analytical model with per-operator and
//!   per-link correction factors loaded from a JSON [`Calibration`]
//!   file (e.g. fitted from `rannc-obs` trace exports).
//!
//! The raw [`Profiler`] also implements [`CostModel`] directly (it *is*
//! the analytical oracle), so existing code holding a `Profiler` can be
//! passed anywhere a `&dyn CostModel` is expected without rebuilding
//! caches.

#![warn(missing_docs)]

mod calibration;
mod migration;
mod model;
pub mod tensor;

pub use calibration::{Calibration, CalibrationError, CALIBRATION_VERSION};
pub use migration::{MigrationCost, MigrationModel};
pub use model::{AnalyticalCost, CalibratedCost, CostModel, CostModelSpec};
pub use tensor::{megatron_partition, TransformerDims};

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Estimated per-iteration time of a synchronous fill–drain pipeline:
/// `(MB + S − 1) · V` — `MB` bottleneck slots plus `S − 1` fill/drain
/// slots at the bottleneck stage time `V`. The planner's DP objective and
/// every iteration-time report share this one formula.
#[inline]
pub fn sync_pipeline_iteration(stages: usize, microbatches: usize, bottleneck: f64) -> f64 {
    (microbatches + stages - 1) as f64 * bottleneck
}

/// Scalar correction factors a cost model hands to value types that
/// cannot hold a trait object (notably `PipelineSpec`, which is
/// serializable and priced long after the model is gone).
///
/// All factors default to `1.0`; multiplying by `1.0` is bit-identical
/// for every finite IEEE-754 value, so the identity factors reproduce
/// the uncalibrated formulas exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostFactors {
    /// Scales modelled compute time (simulated ticks, not the profiler —
    /// per-op compute calibration happens inside the profiler itself).
    pub compute: f64,
    /// Scales point-to-point activation transfer time.
    pub transfer: f64,
    /// Scales gradient all-reduce time for single-node groups.
    pub allreduce_intra: f64,
    /// Scales gradient all-reduce time for node-spanning groups.
    pub allreduce_inter: f64,
    /// Scales optimizer-step time.
    pub optimizer: f64,
}

impl CostFactors {
    /// The identity factors: every formula unchanged, bit-for-bit.
    pub fn identity() -> Self {
        CostFactors {
            compute: 1.0,
            transfer: 1.0,
            allreduce_intra: 1.0,
            allreduce_inter: 1.0,
            optimizer: 1.0,
        }
    }
}

impl Default for CostFactors {
    fn default() -> Self {
        CostFactors::identity()
    }
}

/// Nominal wall-clock ticks the threaded trainer uses to scale its
/// injected delays (straggler slowdowns, link degradation). Owned by the
/// cost layer so simulated time and planned time share one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimTicks {
    /// Nominal per-micro-batch compute used to scale straggler sleeps.
    pub compute: Duration,
    /// Nominal per-transfer latency used to scale link-degrade sleeps.
    pub comm: Duration,
}

impl SimTicks {
    /// Ticks scaled by a cost model's correction factors.
    pub fn scaled(factors: CostFactors) -> Self {
        let base = SimTicks::default();
        SimTicks {
            compute: base.compute.mul_f64(factors.compute),
            comm: base.comm.mul_f64(factors.transfer),
        }
    }
}

impl Default for SimTicks {
    fn default() -> Self {
        SimTicks {
            compute: Duration::from_micros(200),
            comm: Duration::from_micros(100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_drain_formula() {
        let v = 0.125;
        assert_eq!(
            sync_pipeline_iteration(4, 8, v).to_bits(),
            ((8 + 4 - 1) as f64 * v).to_bits()
        );
        // a 1-stage "pipeline" is just MB sequential micro-batches
        assert_eq!(sync_pipeline_iteration(1, 8, v), 8.0 * v);
    }

    #[test]
    fn identity_factors_are_ones() {
        let f = CostFactors::identity();
        assert_eq!(f, CostFactors::default());
        assert_eq!(f.compute, 1.0);
        assert_eq!(f.transfer, 1.0);
        assert_eq!(f.allreduce_intra, 1.0);
        assert_eq!(f.allreduce_inter, 1.0);
        assert_eq!(f.optimizer, 1.0);
    }

    #[test]
    fn sim_ticks_scale() {
        let base = SimTicks::default();
        assert_eq!(SimTicks::scaled(CostFactors::identity()), base);
        let slow = SimTicks::scaled(CostFactors {
            compute: 2.0,
            transfer: 3.0,
            ..CostFactors::identity()
        });
        assert_eq!(slow.compute, base.compute * 2);
        assert_eq!(slow.comm, base.comm * 3);
    }
}
