//! Homogeneous-parity golden suite for the heterogeneous planner.
//!
//! The heterogeneity layer's contract: a cluster whose devices and links
//! are all *functionally* identical to the template must produce plans
//! bit-identical to the legacy homogeneous planner — even when the
//! cluster is *formally* heterogeneous (overrides present) and therefore
//! takes the placement-aware DP path. The suite forces that path with
//! name-only device overrides (same numbers, different label): the slot
//! table's time scale is then exactly `1.0` and every group memory bound
//! equals the template's, so any deviation from the legacy plan is a
//! planner bug, not a rounding artifact.

use rannc::core::{PartitionConfig, PartitionPlan, Rannc};
use rannc::graph::TaskGraph;
use rannc::hw::{ClusterSpec, DeviceRank, DeviceSpec};
use rannc::models::{
    bert_graph, gpt_graph, mlp_graph, resnet_graph, t5_graph, BertConfig, GptConfig, MlpConfig,
    ResNetConfig, T5Config,
};

fn bundled_models() -> Vec<TaskGraph> {
    vec![
        mlp_graph(&MlpConfig::deep(128, 128, 10, 10)),
        bert_graph(&BertConfig::tiny()),
        gpt_graph(&GptConfig::tiny()),
        t5_graph(&T5Config::tiny()),
        resnet_graph(&ResNetConfig::tiny()),
    ]
}

/// Tag every device with a renamed copy of the template: functionally
/// identical, formally heterogeneous.
fn name_tagged(cluster: &ClusterSpec) -> ClusterSpec {
    let mut tagged_spec = cluster.device.clone();
    tagged_spec.name = format!("{}-tagged", tagged_spec.name);
    let mut tagged = cluster.clone();
    for g in 0..cluster.total_devices() {
        let rank = cluster.rank(g);
        tagged = tagged.with_device_override(rank, tagged_spec.clone());
    }
    assert!(tagged.is_heterogeneous());
    tagged
}

/// Field-by-field equality with float fields compared by bit pattern.
fn assert_plans_identical(a: &PartitionPlan, b: &PartitionPlan, label: &str) {
    assert_eq!(a.model, b.model, "{label}: model name differs");
    assert_eq!(a.microbatches, b.microbatches, "{label}: MB differs");
    assert_eq!(
        a.replica_factor, b.replica_factor,
        "{label}: replica factor differs"
    );
    assert_eq!(a.batch_size, b.batch_size, "{label}: batch size differs");
    assert_eq!(
        a.bottleneck.to_bits(),
        b.bottleneck.to_bits(),
        "{label}: bottleneck differs"
    );
    assert_eq!(
        a.est_iteration_time.to_bits(),
        b.est_iteration_time.to_bits(),
        "{label}: estimated iteration time differs"
    );
    assert_eq!(a.stages.len(), b.stages.len(), "{label}: stage count");
    for (i, (s, t)) in a.stages.iter().zip(&b.stages).enumerate() {
        assert_eq!(s.set, t.set, "{label}: stage {i} task set differs");
        assert_eq!(s.replicas, t.replicas, "{label}: stage {i} replicas");
        assert_eq!(
            s.micro_batch, t.micro_batch,
            "{label}: stage {i} micro-batch"
        );
        assert_eq!(
            s.fwd_time.to_bits(),
            t.fwd_time.to_bits(),
            "{label}: stage {i} fwd time differs"
        );
        assert_eq!(
            s.bwd_time.to_bits(),
            t.bwd_time.to_bits(),
            "{label}: stage {i} bwd time differs"
        );
        assert_eq!(s.mem_bytes, t.mem_bytes, "{label}: stage {i} memory");
        assert_eq!(
            s.param_elems, t.param_elems,
            "{label}: stage {i} param count"
        );
    }
}

#[test]
fn name_tagged_fleet_plans_bit_identically() {
    for nodes in [2usize, 4] {
        let plain = ClusterSpec::v100_cluster(nodes);
        let tagged = name_tagged(&plain);
        for g in bundled_models() {
            let rannc = Rannc::new(PartitionConfig::new(64).with_k(8));
            let label = format!("{} on {} nodes", g.name, nodes);
            let a = rannc.partition(&g, &plain).expect("plain plan");
            let b = rannc.partition(&g, &tagged).expect("tagged plan");
            assert_plans_identical(&a, &b, &label);
        }
    }
}

#[test]
fn genuinely_slower_tier_changes_the_placement_price() {
    // one whole node of half-efficiency devices: the placed DP must see
    // a slower fleet, so the bottleneck may only grow — never shrink
    let g = bert_graph(&BertConfig::tiny());
    let plain = ClusterSpec::v100_cluster(2);
    let mut slow = plain.device.clone();
    slow.compute_efficiency *= 0.5;
    let mut hetero = plain.clone();
    for local in 0..plain.node.devices {
        hetero = hetero.with_device_override(DeviceRank { node: 1, local }, slow.clone());
    }
    let rannc = Rannc::new(PartitionConfig::new(64).with_k(8));
    let a = rannc.partition(&g, &plain).expect("plain plan");
    let b = rannc.partition(&g, &hetero).expect("hetero plan");
    assert!(
        b.bottleneck >= a.bottleneck,
        "slower tier cannot speed the plan up: {} < {}",
        b.bottleneck,
        a.bottleneck
    );
}

#[test]
fn small_memory_tier_is_respected() {
    // devices on node 1 hold a fraction of the template memory; every
    // stage the verifier maps onto them must fit that fraction
    let g = mlp_graph(&MlpConfig::deep(256, 256, 12, 10));
    let plain = ClusterSpec::v100_cluster(2);
    let small = DeviceSpec::v100_32gb().with_memory(2 * (1usize << 30));
    let mut hetero = plain.clone();
    for local in 0..plain.node.devices {
        hetero = hetero.with_device_override(DeviceRank { node: 1, local }, small.clone());
    }
    let rannc = Rannc::new(PartitionConfig::new(64).with_k(8));
    // VerifyMode::Fail is the default: partition() itself enforces that
    // each stage fits the smallest device in its group
    let plan = rannc.partition(&g, &hetero).expect("hetero plan verifies");
    assert!(!plan.stages.is_empty());
}
