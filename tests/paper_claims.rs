//! The paper's headline experimental claims, verified end-to-end on the
//! reproduction (scaled-down grids so the suite stays fast; the full
//! grids run in `rannc-bench`).

use rannc::baselines::{
    gpipe_hybrid, gpipe_model, megatron, pipedream_2bw, simulate_data_parallel, BaselineOutcome,
    DataParallelOutcome, TransformerDims,
};
use rannc::prelude::*;
use rannc::train::loss_validation;

fn rannc_throughput(g: &TaskGraph, cluster: &ClusterSpec, batch: usize, k: usize) -> Option<f64> {
    let plan = Rannc::new(PartitionConfig::new(batch).with_k(k))
        .partition(g, cluster)
        .ok()?;
    let profiler = Profiler::new(g, cluster.device.clone(), ProfilerOptions::fp32());
    Some(
        rannc::pipeline::simulate_plan(&plan, &profiler, cluster)
            .expect("valid plan")
            .throughput,
    )
}

/// §IV-B: "RaNNC successfully trained models five times larger than those
/// Megatron-LM could" — on the full paper cluster, RaNNC partitions the
/// 12.9B model while Megatron-LM OOMs at ≥ 4B.
#[test]
fn rannc_trains_larger_models_than_megatron() {
    let cluster = ClusterSpec::v100_cluster(4);
    // Megatron-LM fails on a ~4.1B model...
    let big = BertConfig::enlarged(1536, 144);
    assert!(matches!(
        megatron(&TransformerDims::from(&big), &cluster, 256, Precision::FP32),
        BaselineOutcome::OutOfMemory
    ));
    // ...while RaNNC partitions it fine.
    let g = bert_graph(&big);
    assert!(
        Rannc::new(PartitionConfig::new(256).with_k(32))
            .partition(&g, &cluster)
            .is_ok(),
        "RaNNC should partition the 4.1B model"
    );
}

/// The 12.9B flagship (hidden 2048, 256 layers) is partitionable on
/// 32 GPUs — the paper's largest configuration.
#[test]
fn rannc_partitions_the_12_9b_model() {
    let cfg = BertConfig::enlarged(2048, 256);
    assert!(cfg.param_count() > 12_000_000_000);
    let g = bert_graph(&cfg);
    let cluster = ClusterSpec::v100_cluster(4);
    let plan = Rannc::new(PartitionConfig::new(256).with_k(32))
        .partition(&g, &cluster)
        .expect("the paper's largest model must be partitionable");
    // needs a real pipeline: several stages
    assert!(plan.stages.len() >= 4, "stages = {}", plan.stages.len());
    for st in &plan.stages {
        assert!(st.mem_bytes <= cluster.device.memory_bytes);
    }
}

/// §IV-B: "RaNNC outperformed GPipe-Hybrid" (clearly on small/medium
/// models; near parity at the very largest scale, which the paper itself
/// notes: "the differences in throughputs decrease").
#[test]
fn rannc_beats_gpipe_hybrid_on_medium_bert() {
    let cfg = BertConfig::enlarged(1024, 24);
    let g = bert_graph(&cfg);
    let cluster = ClusterSpec::v100_cluster(4);
    let profiler = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
    let gp = gpipe_hybrid(&g, &profiler, &cluster, 256)
        .throughput()
        .expect("gpipe feasible");
    let ra = rannc_throughput(&g, &cluster, 256, 32).expect("rannc feasible");
    assert!(ra > gp, "RaNNC {ra:.1} should beat GPipe-Hybrid {gp:.1}");
}

/// §IV-B ResNet: "RaNNC outperformed GPipe-Model by a large margin in all
/// of the settings."
#[test]
fn rannc_beats_gpipe_model_on_resnet() {
    let model = ResNetConfig::new(ResNetDepth::R50, 2);
    let g = resnet_graph(&model);
    let cluster = ClusterSpec::v100_cluster(1);
    let profiler = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
    let gp = gpipe_model(&g, &profiler, &cluster, 128)
        .throughput()
        .expect("gpipe-model feasible");
    let ra = rannc_throughput(&g, &cluster, 128, 32).expect("rannc feasible");
    assert!(ra > gp, "RaNNC {ra:.1} should beat GPipe-Model {gp:.1}");
}

/// §IV-B: PipeDream-2BW's async schedule gives it a utilization edge over
/// the same partition run synchronously ("slightly outperformed RaNNC in
/// several settings") — but it is staleness-prone, which the numeric
/// substrate demonstrates.
#[test]
fn pipedream_edge_comes_with_staleness() {
    let cfg = BertConfig::enlarged(1024, 48);
    let g = bert_graph(&cfg);
    let cluster = ClusterSpec::v100_cluster(4);
    let profiler = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
    let pd = pipedream_2bw(&g, &profiler, &cluster, 256)
        .throughput()
        .expect("feasible");
    let gp = gpipe_hybrid(&g, &profiler, &cluster, 256)
        .throughput()
        .expect("feasible");
    assert!(pd > gp, "async 2BW should out-utilize sync GPipe");

    // and the staleness side: async training drifts from the reference
    let v = loss_validation(&[16, 64, 64, 8], 2, 25, 9);
    assert_eq!(v.sync_divergence(), 0.0);
    assert!(v.async_divergence() > 0.0);
}

/// §IV-B: data parallelism trains only the smallest models.
#[test]
fn data_parallel_hits_the_memory_wall_first() {
    let cluster = ClusterSpec::v100_cluster(4);
    let small = bert_graph(&BertConfig::enlarged(1024, 24));
    let profiler = Profiler::new(&small, cluster.device.clone(), ProfilerOptions::fp32());
    assert!(
        simulate_data_parallel(&small, &profiler, &cluster, 256)
            .ok()
            .is_some(),
        "BERT-Large must be data-parallel trainable"
    );
    let big = bert_graph(&BertConfig::enlarged(1024, 96));
    let profiler = Profiler::new(&big, cluster.device.clone(), ProfilerOptions::fp32());
    assert!(
        matches!(
            simulate_data_parallel(&big, &profiler, &cluster, 256),
            DataParallelOutcome::OutOfMemory { .. }
        ),
        "1.2B params must OOM under plain data parallelism"
    );
}

/// §IV-B loss validation: "we confirmed that RaNNC and Megatron-LM
/// reached almost the same loss value … the difference was less than
/// 1.0e-3". Our analogue is stronger: bit-identical sync-pipeline losses.
#[test]
fn loss_validation_claim() {
    let v = loss_validation(&[16, 48, 48, 48, 8], 3, 40, 123);
    assert!(v.sync_divergence() < 1e-3);
    assert_eq!(v.sync_divergence(), 0.0);
}

/// §I motivation: T5's 11 billion parameters are one of the paper's
/// opening examples of models that "do not fit into the memory of
/// accelerator devices" — RaNNC must partition a T5-11B-scale
/// encoder–decoder (a non-chain graph) on the paper's cluster.
#[test]
fn t5_11b_scale_partitionable() {
    let cfg = T5Config::xxl();
    let g = t5_graph(&cfg);
    assert!(
        g.param_count() > 9_000_000_000,
        "params = {}",
        g.param_count()
    );
    let cluster = ClusterSpec::v100_cluster(4);
    let plan = Rannc::new(PartitionConfig::new(128).with_k(32))
        .partition(&g, &cluster)
        .expect("T5-11B must be partitionable on 32 V100s");
    assert!(plan.stages.len() >= 4);
    // stages respect memory and the branching cross-attention edges
    use rannc::graph::convex::ConvexChecker;
    let mut ck = ConvexChecker::new(&g);
    for st in &plan.stages {
        assert!(st.mem_bytes <= cluster.device.memory_bytes);
        assert!(ck.is_convex(&st.set));
    }
}

/// Mixed precision gives the expected speedup band (paper's Fig. 4 shows
/// ~3-4x between RaNNC fp32 and mixed on V100 tensor cores).
#[test]
fn mixed_precision_speedup_band() {
    let cfg = BertConfig::enlarged(1024, 24);
    let g = bert_graph(&cfg);
    let cluster = ClusterSpec::v100_cluster(4);
    let plan32 = Rannc::new(PartitionConfig::new(256).with_k(16))
        .partition(&g, &cluster)
        .unwrap();
    let plan16 = Rannc::new(
        PartitionConfig::new(256)
            .with_k(16)
            .with_precision(Precision::Mixed),
    )
    .partition(&g, &cluster)
    .unwrap();
    let p32 = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
    let p16 = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::mixed());
    let t32 = rannc::pipeline::simulate_plan(&plan32, &p32, &cluster)
        .expect("valid plan")
        .throughput;
    let t16 = rannc::pipeline::simulate_plan(&plan16, &p16, &cluster)
        .expect("valid plan")
        .throughput;
    let ratio = t16 / t32;
    assert!((1.5..6.0).contains(&ratio), "mixed/fp32 ratio = {ratio:.2}");
}
