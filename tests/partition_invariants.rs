//! Cross-crate invariants of the partitioning pipeline, including
//! property-based tests over random models.
//!
//! Plan-level invariants (coverage, convexity, stage ordering, memory and
//! device budgets) are checked by driving the `rannc-verify` static
//! analyser rather than a local helper: any error-severity `RV0xx`
//! diagnostic fails the test, so the partitioner and the verifier are
//! held to the same contract. The seeded-corruption counterpart lives in
//! `tests/verify_mutations.rs`.

use proptest::prelude::*;
use rannc::core::{atomic_partition, block_partition, BlockLimits};
use rannc::graph::convex::ConvexChecker;
use rannc::prelude::*;
use rannc::verify::{verify_graph, verify_plan};

/// Every plan must satisfy the full verifier: graph well-formed, stages
/// covering/convex/ordered, memory and device budgets respected.
fn check_plan(g: &TaskGraph, plan: &PartitionPlan, cluster: &ClusterSpec) {
    let graph_report = verify_graph(g);
    assert!(
        !graph_report.has_errors(),
        "graph verification failed:\n{}",
        graph_report.render()
    );
    let report = verify_plan(g, &plan.view(), cluster);
    assert!(
        !report.has_errors(),
        "plan verification failed:\n{}",
        report.render()
    );
}

#[test]
fn bert_plan_invariants() {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let plan = Rannc::new(PartitionConfig::new(64).with_k(8))
        .partition(&g, &cluster)
        .unwrap();
    check_plan(&g, &plan, &cluster);
}

#[test]
fn resnet_plan_invariants() {
    let g = resnet_graph(&ResNetConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let plan = Rannc::new(PartitionConfig::new(64).with_k(8))
        .partition(&g, &cluster)
        .unwrap();
    check_plan(&g, &plan, &cluster);
}

/// Random-MLP strategy: depth and width vary; batch always divisible.
fn mlp_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..12, 8usize..64, 2usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random model shapes, the full pipeline (atomic → blocks →
    /// stages) produces plans the static verifier certifies clean of
    /// errors.
    #[test]
    fn random_mlp_plan_invariants((depth, width, k_exp) in mlp_strategy()) {
        let g = mlp_graph(&MlpConfig::deep(width, width, depth, 4));
        let cluster = ClusterSpec::v100_cluster(1);
        let k = 1usize << k_exp;
        let plan = Rannc::new(PartitionConfig::new(32).with_k(k))
            .partition(&g, &cluster)
            .unwrap();
        let report = verify_plan(&g, &plan.view(), &cluster);
        prop_assert!(!report.has_errors(), "plan verification failed:\n{}", report.render());
    }

    /// Block-level partitioning alone: blocks cover, are convex, and
    /// respect the memory bound they were built with.
    #[test]
    fn random_mlp_block_invariants((depth, width, k_exp) in mlp_strategy()) {
        let g = mlp_graph(&MlpConfig::deep(width, width, depth, 4));
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let atomic = atomic_partition(&g);
        let limits = BlockLimits {
            k: 1usize << k_exp,
            mem_limit: 32 << 30,
            profile_batch: 2,
        };
        let blocks = block_partition(&g, &profiler, &atomic, limits);
        let mut ck = ConvexChecker::new(&g);
        let mut covered = TaskSet::new(g.num_tasks());
        for b in &blocks {
            prop_assert!(ck.is_convex(&b.set));
            prop_assert!(b.mem <= limits.mem_limit);
            covered.union_with(&b.set);
        }
        prop_assert_eq!(covered.len(), g.num_tasks());
    }

    /// Atomic partitioning: exactly one non-constant task per component,
    /// for random graphs from all builders.
    #[test]
    fn atomic_invariants_on_bert_variants(layers in 1usize..5, hidden_exp in 5usize..8) {
        let cfg = BertConfig {
            hidden: 1 << hidden_exp,
            layers,
            heads: (1 << hidden_exp) / 16,
            intermediate: 4 << hidden_exp,
            vocab: 512,
            seq_len: 16,
        };
        let g = bert_graph(&cfg);
        let p = atomic_partition(&g);
        prop_assert!(rannc::core::atomic::check_invariants(&g, &p).is_ok());
    }
}

#[test]
fn all_model_builder_graphs_verify_clean() {
    // every bundled builder emits a graph free of error diagnostics
    let graphs = [
        bert_graph(&BertConfig::tiny()),
        gpt_graph(&GptConfig::tiny()),
        t5_graph(&T5Config::tiny()),
        resnet_graph(&ResNetConfig::tiny()),
        mlp_graph(&MlpConfig::deep(64, 64, 8, 10)),
    ];
    for g in &graphs {
        let report = verify_graph(g);
        assert!(
            !report.has_errors(),
            "{}: graph verification failed:\n{}",
            g.name,
            report.render()
        );
    }
}

#[test]
fn more_devices_never_hurt_the_objective() {
    // the DP objective with a larger device budget can only improve
    use rannc::core::{form_stage_dp, DpParams};
    let g = mlp_graph(&MlpConfig::deep(128, 128, 12, 10));
    let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
    let atomic = atomic_partition(&g);
    let blocks = block_partition(
        &g,
        &profiler,
        &atomic,
        BlockLimits {
            k: 8,
            mem_limit: 32 << 30,
            profile_batch: 2,
        },
    );
    let mut last = f64::INFINITY;
    for d in [2usize, 4, 8] {
        let sol = form_stage_dp(
            &g,
            &profiler,
            &blocks,
            &DpParams {
                stages: 2,
                devices: d,
                batch_size: 128,
                replica_factor: 1,
                microbatches: 4,
                mem_limit: 32 << 30,
                tp: 1,
            },
            LinkSpec::nvlink(),
        )
        .expect("feasible");
        assert!(
            sol.value <= last * 1.000001,
            "objective worsened with more devices: {last} -> {}",
            sol.value
        );
        last = sol.value;
    }
}
