//! Cross-crate invariants of the partitioning pipeline, including
//! property-based tests over random models.

use proptest::prelude::*;
use rannc::core::{atomic_partition, block_partition, BlockLimits};
use rannc::graph::convex::ConvexChecker;
use rannc::prelude::*;

/// Every phase output must cover all tasks, be convex, and stages must be
/// topologically ordered.
fn check_plan(g: &TaskGraph, plan: &PartitionPlan) {
    let n = g.num_tasks();
    let mut ck = ConvexChecker::new(g);
    let mut covered = TaskSet::new(n);
    for st in &plan.stages {
        assert!(!st.set.is_empty(), "empty stage");
        assert!(ck.is_convex(&st.set), "non-convex stage");
        covered.union_with(&st.set);
    }
    assert_eq!(covered.len(), n, "stages do not cover the graph");
    // stage order respects data flow: no value produced in a later stage
    // is consumed in an earlier one (clone-aware: skip producers the
    // consumer stage contains itself)
    for (i, a) in plan.stages.iter().enumerate() {
        for b in plan.stages.iter().skip(i + 1) {
            for t in b.set.iter() {
                if a.set.contains(t) {
                    continue; // constant-task clone shared by both stages
                }
                for s in g.task_successors(t) {
                    assert!(
                        !a.set.contains(s) || b.set.contains(s),
                        "backward edge across stages: {t} -> {s}"
                    );
                }
            }
        }
    }
}

#[test]
fn bert_plan_invariants() {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let plan = Rannc::new(PartitionConfig::new(64).with_k(8))
        .partition(&g, &cluster)
        .unwrap();
    check_plan(&g, &plan);
}

#[test]
fn resnet_plan_invariants() {
    let g = resnet_graph(&ResNetConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let plan = Rannc::new(PartitionConfig::new(64).with_k(8))
        .partition(&g, &cluster)
        .unwrap();
    check_plan(&g, &plan);
}

/// Random-MLP strategy: depth and width vary; batch always divisible.
fn mlp_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..12, 8usize..64, 2usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random model shapes, the full pipeline (atomic → blocks →
    /// stages) preserves coverage, convexity and ordering.
    #[test]
    fn random_mlp_plan_invariants((depth, width, k_exp) in mlp_strategy()) {
        let g = mlp_graph(&MlpConfig::deep(width, width, depth, 4));
        let cluster = ClusterSpec::v100_cluster(1);
        let k = 1usize << k_exp;
        let plan = Rannc::new(PartitionConfig::new(32).with_k(k))
            .partition(&g, &cluster)
            .unwrap();
        check_plan(&g, &plan);
    }

    /// Block-level partitioning alone: blocks cover, are convex, and
    /// respect the memory bound they were built with.
    #[test]
    fn random_mlp_block_invariants((depth, width, k_exp) in mlp_strategy()) {
        let g = mlp_graph(&MlpConfig::deep(width, width, depth, 4));
        let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
        let atomic = atomic_partition(&g);
        let limits = BlockLimits {
            k: 1usize << k_exp,
            mem_limit: 32 << 30,
            profile_batch: 2,
        };
        let blocks = block_partition(&g, &profiler, &atomic, limits);
        let mut ck = ConvexChecker::new(&g);
        let mut covered = TaskSet::new(g.num_tasks());
        for b in &blocks {
            prop_assert!(ck.is_convex(&b.set));
            prop_assert!(b.mem <= limits.mem_limit);
            covered.union_with(&b.set);
        }
        prop_assert_eq!(covered.len(), g.num_tasks());
    }

    /// Atomic partitioning: exactly one non-constant task per component,
    /// for random graphs from all builders.
    #[test]
    fn atomic_invariants_on_bert_variants(layers in 1usize..5, hidden_exp in 5usize..8) {
        let cfg = BertConfig {
            hidden: 1 << hidden_exp,
            layers,
            heads: (1 << hidden_exp) / 16,
            intermediate: 4 << hidden_exp,
            vocab: 512,
            seq_len: 16,
        };
        let g = bert_graph(&cfg);
        let p = atomic_partition(&g);
        prop_assert!(rannc::core::atomic::check_invariants(&g, &p).is_ok());
    }
}

#[test]
fn more_devices_never_hurt_the_objective() {
    // the DP objective with a larger device budget can only improve
    use rannc::core::{form_stage_dp, DpParams};
    let g = mlp_graph(&MlpConfig::deep(128, 128, 12, 10));
    let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
    let atomic = atomic_partition(&g);
    let blocks = block_partition(
        &g,
        &profiler,
        &atomic,
        BlockLimits {
            k: 8,
            mem_limit: 32 << 30,
            profile_batch: 2,
        },
    );
    let mut last = f64::INFINITY;
    for d in [2usize, 4, 8] {
        let sol = form_stage_dp(
            &g,
            &profiler,
            &blocks,
            &DpParams {
                stages: 2,
                devices: d,
                batch_size: 128,
                replica_factor: 1,
                microbatches: 4,
                mem_limit: 32 << 30,
            },
            LinkSpec::nvlink(),
        )
        .expect("feasible");
        assert!(
            sol.value <= last * 1.000001,
            "objective worsened with more devices: {last} -> {}",
            sol.value
        );
        last = sol.value;
    }
}
