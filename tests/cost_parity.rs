//! Golden parity suite for the cost-model layer.
//!
//! The refactor's contract is *no behaviour change by default*: routing
//! every price through [`CostModel`] instead of calling the profiler and
//! `rannc-hw` formulas directly must leave plans and simulated iteration
//! times bit-identical. Three oracles are compared on every bundled
//! model at 16 and 32 devices:
//!
//! 1. the raw [`Profiler`] (the pre-refactor call path — it implements
//!    `CostModel` directly);
//! 2. [`AnalyticalCost`] (the default model);
//! 3. [`CalibratedCost`] with the identity [`Calibration`] (every factor
//!    `1.0` — multiplying by `1.0` is bit-exact for finite IEEE-754).
//!
//! A final test proves the opposite direction: a *non*-identity
//! calibration, round-tripped through the frozen JSON schema, changes at
//! least one bundled model's chosen partition — the seam is real, not
//! decorative.

use rannc::core::{PartitionConfig, PartitionPlan, Rannc, VerifyMode};
use rannc::cost::{AnalyticalCost, CalibratedCost, Calibration, CostModel, CostModelSpec};
use rannc::graph::TaskGraph;
use rannc::hw::ClusterSpec;
use rannc::models::{
    bert_graph, gpt_graph, mlp_graph, resnet_graph, BertConfig, GptConfig, MlpConfig, ResNetConfig,
};
use rannc::pipeline::simulate_plan;
use rannc::profile::{Profiler, ProfilerOptions};

fn bundled_models() -> Vec<TaskGraph> {
    vec![
        mlp_graph(&MlpConfig::deep(128, 128, 10, 10)),
        bert_graph(&BertConfig::tiny()),
        gpt_graph(&GptConfig::tiny()),
        resnet_graph(&ResNetConfig::tiny()),
    ]
}

/// Field-by-field plan equality with floats compared by bit pattern.
fn assert_plans_identical(a: &PartitionPlan, b: &PartitionPlan, label: &str) {
    assert_eq!(
        a.est_iteration_time.to_bits(),
        b.est_iteration_time.to_bits(),
        "{label}: estimated iteration time differs"
    );
    assert_eq!(
        a.bottleneck.to_bits(),
        b.bottleneck.to_bits(),
        "{label}: bottleneck differs"
    );
    assert_eq!(a.microbatches, b.microbatches, "{label}: MB differs");
    assert_eq!(
        a.replica_factor, b.replica_factor,
        "{label}: replica factor differs"
    );
    assert_eq!(a.batch_size, b.batch_size, "{label}: batch size differs");
    assert_eq!(
        a.stages.len(),
        b.stages.len(),
        "{label}: stage count differs"
    );
    for (i, (x, y)) in a.stages.iter().zip(&b.stages).enumerate() {
        assert_eq!(x.set, y.set, "{label}: stage {i} task set differs");
        assert_eq!(x.replicas, y.replicas, "{label}: stage {i} replicas differ");
        assert_eq!(
            x.micro_batch, y.micro_batch,
            "{label}: stage {i} micro-batch differs"
        );
        assert_eq!(
            x.fwd_time.to_bits(),
            y.fwd_time.to_bits(),
            "{label}: stage {i} fwd time differs"
        );
        assert_eq!(
            x.bwd_time.to_bits(),
            y.bwd_time.to_bits(),
            "{label}: stage {i} bwd time differs"
        );
        assert_eq!(
            x.mem_bytes, y.mem_bytes,
            "{label}: stage {i} memory differs"
        );
        assert_eq!(
            x.param_elems, y.param_elems,
            "{label}: stage {i} params differ"
        );
    }
}

fn partition_with(g: &TaskGraph, cluster: &ClusterSpec, cost: CostModelSpec) -> PartitionPlan {
    Rannc::new(
        PartitionConfig::new(64)
            .with_k(8)
            .with_verify(VerifyMode::Fail)
            .with_cost_model(cost),
    )
    .partition(g, cluster)
    .expect("partition succeeds")
}

/// Every bundled model, 16 and 32 devices: the default analytical model
/// and the identity-calibrated model choose bit-identical plans.
#[test]
fn plans_identical_across_cost_models() {
    for nodes in [2usize, 4] {
        let cluster = ClusterSpec::v100_cluster(nodes);
        for g in bundled_models() {
            let label = format!("{} @ {} devices", g.name, cluster.total_devices());
            let analytical = partition_with(&g, &cluster, CostModelSpec::Analytical);
            let identity = partition_with(
                &g,
                &cluster,
                CostModelSpec::Calibrated(Calibration::identity()),
            );
            assert_plans_identical(&analytical, &identity, &label);
        }
    }
}

/// Every bundled model, 16 and 32 devices: the simulated iteration time
/// of the chosen plan is bit-identical whether the simulator is priced
/// by the raw profiler, `AnalyticalCost`, or the identity-calibrated
/// model.
#[test]
fn simulated_iteration_times_identical_across_cost_models() {
    for nodes in [2usize, 4] {
        let cluster = ClusterSpec::v100_cluster(nodes);
        for g in bundled_models() {
            let label = format!("{} @ {} devices", g.name, cluster.total_devices());
            let plan = partition_with(&g, &cluster, CostModelSpec::Analytical);

            let raw = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
            let analytical =
                AnalyticalCost::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
            let identity = CalibratedCost::new(
                &g,
                cluster.device.clone(),
                ProfilerOptions::fp32(),
                Calibration::identity(),
                &cluster,
            );
            let models: [&dyn CostModel; 3] = [&raw, &analytical, &identity];
            let times: Vec<u64> = models
                .iter()
                .map(|m| {
                    simulate_plan(&plan, *m, &cluster)
                        .expect("plan simulates")
                        .iteration_time
                        .to_bits()
                })
                .collect();
            assert_eq!(times[0], times[1], "{label}: analytical diverged from raw");
            assert_eq!(
                times[0], times[2],
                "{label}: identity calibration diverged from raw"
            );
        }
    }
}

/// The seam carries real signal: a strong calibration — round-tripped
/// through the frozen JSON schema first — changes at least one bundled
/// model's chosen partition, not just its prices, and the changed plan
/// still passes the strict verifier.
#[test]
fn strong_calibration_changes_a_chosen_partition() {
    let cal = Calibration {
        compute: 1.0,
        ops: vec![("matmul".into(), 4.0)],
        link_intra: 25.0,
        link_inter: 25.0,
        allreduce: 1.0,
        optimizer: 1.0,
        memory: 1.0,
    };
    // the calibration that partitions must be one that survived the
    // serialization round trip, so the file format is exercised too
    let cal = Calibration::from_json(&cal.to_json()).expect("calibration round-trips");
    assert!(!cal.is_identity());

    let mut changed = Vec::new();
    for g in bundled_models() {
        let cluster = ClusterSpec::v100_cluster(2);
        let base = partition_with(&g, &cluster, CostModelSpec::Analytical);
        let cal_plan = partition_with(&g, &cluster, CostModelSpec::Calibrated(cal.clone()));
        let same_shape = base.stages.len() == cal_plan.stages.len()
            && base.microbatches == cal_plan.microbatches
            && base.replica_factor == cal_plan.replica_factor
            && base
                .stages
                .iter()
                .zip(&cal_plan.stages)
                .all(|(a, b)| a.set == b.set && a.replicas == b.replicas);
        if !same_shape {
            changed.push(g.name.clone());
        }
    }
    assert!(
        !changed.is_empty(),
        "strong calibration changed no bundled model's partition"
    );
}
