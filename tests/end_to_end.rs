//! End-to-end integration tests: unmodified model description → partition
//! plan → simulated training, across model families and cluster shapes.

use rannc::prelude::*;

/// Partition + simulate, returning (plan, throughput).
fn run(g: &TaskGraph, cluster: &ClusterSpec, batch: usize, k: usize) -> (PartitionPlan, f64) {
    let plan = Rannc::new(PartitionConfig::new(batch).with_k(k))
        .partition(g, cluster)
        .expect("feasible");
    let profiler = Profiler::new(g, cluster.device.clone(), ProfilerOptions::fp32());
    let sim = rannc::pipeline::simulate_plan(&plan, &profiler, cluster).expect("valid plan");
    (plan, sim.throughput)
}

#[test]
fn bert_on_one_node() {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let (plan, thr) = run(&g, &cluster, 64, 8);
    assert!(thr > 0.0);
    assert!(plan.total_devices() <= 8);
}

#[test]
fn gpt_on_two_nodes() {
    let g = gpt_graph(&GptConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(2);
    let (plan, thr) = run(&g, &cluster, 64, 8);
    assert!(thr > 0.0);
    assert!(plan.total_devices() <= 16);
}

#[test]
fn t5_encoder_decoder_on_one_node() {
    // T5's cross-attention edges make the graph non-chain: every decoder
    // layer reads the encoder output. Stages must still be convex and the
    // encoder memory must flow forward through stage boundaries.
    let g = t5_graph(&T5Config::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let (plan, thr) = run(&g, &cluster, 64, 8);
    assert!(thr > 0.0);
    use rannc::graph::convex::ConvexChecker;
    let mut ck = ConvexChecker::new(&g);
    for st in &plan.stages {
        assert!(ck.is_convex(&st.set), "non-convex T5 stage");
    }
}

#[test]
fn resnet_on_one_node() {
    let g = resnet_graph(&ResNetConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let (_, thr) = run(&g, &cluster, 128, 8);
    assert!(thr > 0.0);
}

#[test]
fn memory_pressure_forces_more_stages() {
    // the same model on shrinking devices needs more stages; the plan must
    // always respect the device memory bound
    let g = bert_graph(&BertConfig::enlarged(256, 8));
    let mut last_stages = 0usize;
    for gib_times_4 in [128usize, 10, 7] {
        let mem = (gib_times_4 << 30) / 4 + (1 << 30); // overhead + shrinking budget
        let mut cluster = ClusterSpec::v100_cluster(1);
        cluster.device = cluster.device.with_memory(mem);
        let plan = Rannc::new(PartitionConfig::new(32).with_k(8))
            .partition(&g, &cluster)
            .expect("feasible");
        for st in &plan.stages {
            assert!(st.mem_bytes <= mem, "stage over budget");
        }
        assert!(
            plan.stages.len() >= last_stages,
            "smaller memory should not reduce stage count"
        );
        last_stages = plan.stages.len();
    }
    assert!(last_stages >= 2, "tightest budget should force a split");
}

#[test]
fn mixed_precision_plan_is_faster() {
    let g = bert_graph(&BertConfig::enlarged(128, 4));
    let cluster = ClusterSpec::v100_cluster(1);
    let thr = |precision| {
        let plan = Rannc::new(PartitionConfig::new(64).with_k(8).with_precision(precision))
            .partition(&g, &cluster)
            .unwrap();
        let opts = match precision {
            Precision::FP32 => ProfilerOptions::fp32(),
            Precision::Mixed => ProfilerOptions::mixed(),
        };
        let profiler = Profiler::new(&g, cluster.device.clone(), opts);
        rannc::pipeline::simulate_plan(&plan, &profiler, &cluster)
            .expect("valid plan")
            .throughput
    };
    assert!(thr(Precision::Mixed) > thr(Precision::FP32));
}

#[test]
fn plan_is_robust_to_profiling_noise() {
    // with 10% measurement jitter the partitioner must still produce a
    // valid plan whose simulated throughput is in the same ballpark
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let clean = Rannc::new(PartitionConfig::new(64).with_k(8))
        .partition(&g, &cluster)
        .unwrap();
    let noisy = Rannc::new(PartitionConfig::new(64).with_k(8).with_noise(0.1, 7))
        .partition(&g, &cluster)
        .unwrap();
    let profiler = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
    let t_clean = rannc::pipeline::simulate_plan(&clean, &profiler, &cluster)
        .expect("valid plan")
        .throughput;
    let t_noisy = rannc::pipeline::simulate_plan(&noisy, &profiler, &cluster)
        .expect("valid plan")
        .throughput;
    let ratio = t_noisy / t_clean;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "noise destabilized plan: {ratio}"
    );
}

#[test]
fn device_assignment_covers_plan() {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(2);
    let (plan, _) = run(&g, &cluster, 64, 8);
    let asg = plan.device_assignment(&cluster).unwrap();
    let mut used = std::collections::HashSet::new();
    for replica in &asg {
        for stage_ranks in replica {
            for &r in stage_ranks {
                assert!(r < cluster.total_devices());
                assert!(used.insert(r), "device {r} double-booked");
            }
        }
    }
    assert_eq!(used.len(), plan.total_devices());
}

#[test]
fn plan_summary_is_stable() {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(1);
    let (plan_a, _) = run(&g, &cluster, 64, 8);
    let (plan_b, _) = run(&g, &cluster, 64, 8);
    // the whole pipeline is deterministic: identical runs, identical plans
    assert_eq!(plan_a.summary(), plan_b.summary());
}
