//! Observability round-trip (issue 4, satellite 3): partition a bundled
//! BERT model at 16 devices with tracing enabled, export the Chrome
//! trace and the metrics log, and verify that
//!
//! 1. the trace is valid JSON (our own parser, no JSON crate),
//! 2. slices are properly nested per lane (no end-before-start, no
//!    cross-lane overlap masquerading as parenthood),
//! 3. span counts match the metric counters — one `dp` slice per DP
//!    candidate the search actually evaluated (pruned cells never start
//!    a DP, so they emit no slice),
//! 4. the simulator timeline renders as per-stage pipeline lanes.
//!
//! The obs globals are process-wide, so everything runs under
//! `trace::test_guard()` and counters are compared as deltas.

use rannc::obs::{check, json, metrics, sink, trace};
use rannc::prelude::*;

#[test]
fn chrome_trace_roundtrip_bert_16_devices() {
    let _serial = trace::test_guard();
    trace::reset();
    rannc::obs::set_enabled(true);

    let candidates_before = metrics::counter_value("planner.search.candidates");
    let pruned_before = metrics::counter_value("planner.search.pruned");

    // BERT on 2 nodes x 8 GPUs = the acceptance configuration
    let graph = bert_graph(&BertConfig::enlarged(256, 4));
    let cluster = ClusterSpec::v100_cluster(2);
    let (plan, stats) = Rannc::new(PartitionConfig::new(64).with_k(8))
        .partition_with_stats(&graph, &cluster)
        .unwrap();

    // pipeline simulation with the timeline bridged into the trace
    let profiler = Profiler::new(&graph, cluster.device.clone(), ProfilerOptions::fp32());
    let spec = rannc::pipeline::spec_from_plan(&plan, &profiler, &cluster).unwrap();
    let out = simulate_sync(&spec, SyncSchedule::OneFOneB, true);
    let timeline = out.timeline.expect("timeline requested");
    let pipeline_slices =
        rannc::pipeline::record_timeline("pipeline", &timeline, plan.stages.len());
    assert_eq!(
        pipeline_slices,
        timeline.len(),
        "every event becomes a slice"
    );

    rannc::obs::set_enabled(false);

    // --- 1. the export is valid JSON ---
    let trace_json = sink::chrome_trace_json(&trace::snapshot_events());
    json::validate(&trace_json).expect("chrome trace is well-formed JSON");

    // --- 2. slices nest properly per lane ---
    let summary = check::check_trace(&trace_json).expect("trace passes structural checks");
    assert!(summary.slices > 0);

    // every planner phase of Algorithm 1/2 shows up as a named slice
    for phase in [
        "partition",
        "atomic",
        "blocks",
        "coarsen",
        "uncoarsen",
        "compact",
        "search",
        "sweep",
        "verify",
    ] {
        assert!(
            summary.count_of(phase) >= 1,
            "missing planner phase slice `{phase}`"
        );
    }

    // --- 3. span counts match metric counters ---
    let candidates = metrics::counter_value("planner.search.candidates") - candidates_before;
    let pruned = metrics::counter_value("planner.search.pruned") - pruned_before;
    assert_eq!(
        summary.count_of("dp") as u64,
        candidates - pruned,
        "one `dp` slice per DP candidate the search evaluated (pruned cells skip the DP)"
    );
    assert_eq!(
        stats.search.candidates as u64, candidates,
        "registry delta equals the per-run snapshot"
    );
    assert_eq!(
        stats.search.pruned as u64, pruned,
        "pruned registry delta equals the per-run snapshot"
    );

    // --- 4. the 1F1B schedule renders on per-stage lanes ---
    let fwd = timeline
        .iter()
        .filter(|e| matches!(e.kind, rannc::pipeline::WorkKind::Forward))
        .count();
    let f0 = summary.count_of("F0");
    assert!(f0 >= 1, "micro-batch 0 forward slices present");
    let total_fb: usize = summary
        .by_name
        .iter()
        .filter(|(n, _)| n.starts_with('F') || n.starts_with('B'))
        .map(|(_, c)| *c)
        .sum();
    assert!(
        total_fb >= fwd,
        "pipeline slices cover at least the forward events"
    );

    // --- metrics log round-trips through its own checker ---
    let jsonl = sink::metrics_jsonl(&metrics::snapshot());
    let msum = check::check_metrics(&jsonl).expect("metrics log passes checks");
    assert!(msum.counters >= 1 && msum.gauges >= 1);

    trace::reset();
}
