//! Mutation suite for the static verifier.
//!
//! Take a known-good multi-stage plan, apply one seeded corruption at a
//! time, and assert `rannc-verify` reports the *expected* diagnostic
//! code — each mutation is the failure mode its `RV0xx` code names.
//! The dual obligation (every clean bundled model × cluster combination
//! verifies clean) lives at the bottom.

use proptest::prelude::*;
use rannc::prelude::*;
use rannc::verify::{
    verify_graph, verify_plan, verify_plan_structure, verify_schedule, Code, CollectiveGroup,
    CommOp, CommProgram, MsgTag, PhaseKind, Report, ScheduleModel,
};

/// A genuinely multi-stage plan: a deep MLP on a memory-constrained
/// device so the partitioner is forced to split it.
fn multi_stage_fixture() -> (TaskGraph, ClusterSpec, PartitionPlan) {
    let g = mlp_graph(&MlpConfig::deep(512, 512, 12, 10));
    let mem = (1usize << 30) + 40 * (1 << 20);
    let mut cluster = ClusterSpec::v100_cluster(1);
    cluster.device = cluster.device.clone().with_memory(mem);
    let plan = Rannc::new(PartitionConfig::new(32).with_k(8))
        .partition(&g, &cluster)
        .unwrap();
    assert!(plan.stages.len() >= 2, "fixture must be multi-stage");
    (g, cluster, plan)
}

fn assert_code(report: &Report, code: Code, what: &str) {
    assert!(
        report.has_code(code),
        "mutation `{what}` should raise {code:?}, got:\n{}",
        report.render()
    );
}

#[test]
fn baseline_fixture_is_clean() {
    let (g, cluster, plan) = multi_stage_fixture();
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn mutation_dropped_task_is_coverage_hole() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    let victim = plan.stages[0].set.iter().next().unwrap();
    plan.stages[0].set.remove(victim);
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::CoverageHole, "drop a task");
}

#[test]
fn mutation_reversed_stages_is_backward_edge() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages.reverse();
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::BackwardStageEdge, "reverse stage order");
}

#[test]
fn mutation_inflated_mem_bytes_exceeds_capacity() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].mem_bytes = cluster.device.memory_bytes * 10;
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::MemoryOverCapacity, "inflate mem_bytes");
}

#[test]
fn mutation_moved_interior_task_breaks_convexity() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    // Move stage 1's last task into stage 0: stage 0 then contains both
    // endpoints of a path whose interior lives in stage 1.
    let victim = plan.stages[1].set.iter().last().unwrap();
    plan.stages[1].set.remove(victim);
    plan.stages[0].set.insert(victim);
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::NonConvexStage, "move an interior task");
}

#[test]
fn mutation_duplicated_task_is_double_assignment() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    // Copy a non-constant task of stage 1 into stage 0 as well.
    let non_constant = rannc::graph::traverse::non_constant_tasks(&g);
    let victim = plan.stages[1]
        .set
        .iter()
        .find(|t| non_constant[t.index()])
        .unwrap();
    plan.stages[0].set.insert(victim);
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::DuplicateAssignment, "duplicate a task");
}

#[test]
fn mutation_zero_replicas_is_degenerate() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].replicas = 0;
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::DegenerateCounts, "zero stage replicas");
}

#[test]
fn mutation_foreign_universe_is_mismatch() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    // Rebuild stage 0's set against a universe 5 tasks larger, as if it
    // came from a different build of the model.
    let rebuilt = TaskSet::from_ids(g.num_tasks() + 5, plan.stages[0].set.iter());
    plan.stages[0].set = rebuilt;
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::UniverseMismatch, "foreign universe");
}

#[test]
fn mutation_replica_explosion_oversubscribes_devices() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].replicas += 1000;
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::DeviceOversubscription, "replica explosion");
}

#[test]
fn mutation_inflated_micro_batch_is_infeasible() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].micro_batch = plan.batch_size; // x microbatches > batch
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::MicrobatchInfeasible, "inflate micro_batch");
}

#[test]
fn mutation_emptied_stage_is_reported() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].set = TaskSet::new(g.num_tasks());
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::EmptyStage, "empty a stage");
}

#[test]
fn structural_subset_catches_decode_visible_mutations() {
    // the graph-free pass plan_io runs on load sees the same structural
    // corruptions
    let (_, _, mut plan) = multi_stage_fixture();
    plan.replica_factor = 0;
    let report = verify_plan_structure(&plan.view());
    assert_code(&report, Code::DegenerateCounts, "zero replica_factor");
}

// ---- graph mutations ------------------------------------------------

#[test]
fn graph_mutation_cycle_detected() {
    use rannc::graph::{DType, OpKind, TaskGraph, ValueKind};
    // hand-assembled 2-cycle: t0 consumes b and produces a, t1 the reverse
    let mut g = TaskGraph::new("cyclic");
    let x = g.add_value("x", [4], DType::F32, ValueKind::Input);
    let a = g.add_value("a", [4], DType::F32, ValueKind::Activation);
    let b = g.add_value("b", [4], DType::F32, ValueKind::Activation);
    g.add_task("t0", OpKind::Add, vec![x, b], vec![a]).unwrap();
    g.add_task("t1", OpKind::Relu, vec![a], vec![b]).unwrap();
    g.mark_output(b);
    let report = verify_graph(&g);
    assert!(report.has_code(Code::GraphCycle), "{}", report.render());
}

#[test]
fn graph_mutation_bad_shape_detected() {
    use rannc::graph::{DType, OpKind, TaskGraph, ValueKind};
    // a matmul whose recorded output shape contradicts its inputs
    let mut g = TaskGraph::new("bad-matmul");
    let x = g.add_value("x", [4, 8], DType::F32, ValueKind::Input);
    let w = g.add_value("w", [8, 16], DType::F32, ValueKind::Param);
    let y = g.add_value("y", [4, 17], DType::F32, ValueKind::Activation);
    g.add_task("mm", OpKind::MatMul, vec![x, w], vec![y])
        .unwrap();
    g.mark_output(y);
    let report = verify_graph(&g);
    assert!(
        report.has_code(Code::ShapeRuleViolation),
        "{}",
        report.render()
    );
}

#[test]
fn graph_mutation_mislabeled_static_detected() {
    use rannc::graph::{DType, OpKind, TaskGraph, ValueKind};
    // an Activation no task produces: its static marker lies
    let mut g = TaskGraph::new("mislabeled");
    let ghost = g.add_value("ghost", [4], DType::F32, ValueKind::Activation);
    let y = g.add_value("y", [4], DType::F32, ValueKind::Activation);
    g.add_task("t0", OpKind::Relu, vec![ghost], vec![y])
        .unwrap();
    g.mark_output(y);
    let report = verify_graph(&g);
    assert!(
        report.has_code(Code::MislabeledStatic),
        "{}",
        report.render()
    );
}

// ---- schedule mutations ---------------------------------------------

#[test]
fn schedule_mutation_truncated_order_is_incomplete() {
    let mut model = rannc::pipeline::schedule_model(SyncSchedule::FillDrain, 3, 4);
    model.orders[2].pop();
    let report = verify_schedule(&model);
    assert!(
        report.has_code(Code::ScheduleIncomplete),
        "{}",
        report.render()
    );
}

#[test]
fn schedule_mutation_warmup_mismatch_deadlocks() {
    use PhaseKind::{Backward as B, Forward as F};
    // stage 0 runs eager 1F1B (no warmup) while stage 1 expects
    // fill-drain: a cross-stage wait cycle, caught statically
    let model = ScheduleModel {
        stages: 2,
        microbatches: 2,
        orders: vec![
            vec![(F, 0), (B, 0), (F, 1), (B, 1)],
            vec![(F, 0), (F, 1), (B, 0), (B, 1)],
        ],
    };
    let report = verify_schedule(&model);
    assert!(
        report.has_code(Code::ScheduleDeadlock),
        "{}",
        report.render()
    );
}

// ---- deep-verify mutations: comm program + certified memory ---------
//
// Same discipline as above, against the dataflow-certified layer: derive
// the fixture's *real* communication program, corrupt one property at a
// time, and pin the RV06x/RV1xx code that names the corruption.

/// The fixture plus its derived fill-drain communication program.
fn derived_program() -> (TaskGraph, ClusterSpec, PartitionPlan, CommProgram) {
    let (g, cluster, plan) = multi_stage_fixture();
    let program = rannc::pipeline::comm_program(&g, &plan, &cluster, SyncSchedule::FillDrain)
        .expect("fixture placement must be derivable");
    (g, cluster, plan, program)
}

#[test]
fn deep_baseline_fixture_certifies_clean() {
    let (g, cluster, plan) = multi_stage_fixture();
    for schedule in [SyncSchedule::FillDrain, SyncSchedule::OneFOneB] {
        let (report, certified) =
            rannc::pipeline::deep_verify_plan(&g, &plan, &cluster, schedule, Precision::FP32)
                .expect("fixture must deep-verify");
        assert!(!report.has_errors(), "{schedule:?}:\n{}", report.render());
        assert_eq!(certified.len(), plan.stages.len());
        for c in &certified {
            assert!(
                c.certified_bytes <= c.capacity_bytes,
                "certified {} > capacity {} on d{}",
                c.certified_bytes,
                c.capacity_bytes,
                c.device
            );
        }
    }
}

#[test]
fn mutation_duplicated_collective_is_rv060() {
    let (_g, _cluster, _plan, mut program) = derived_program();
    // one member of a DP group fires its allreduce twice: occurrence
    // counts across the group disagree and the collective hangs
    let (gi, group) = program
        .groups
        .iter()
        .enumerate()
        .find(|(_, gr)| gr.members.len() >= 2)
        .expect("fixture must have a multi-member DP group");
    let rank = group.members[0];
    let pos = program.programs[rank]
        .iter()
        .position(|op| matches!(op, CommOp::AllReduce { group, .. } if *group == gi))
        .expect("group member must issue its collective");
    let dup = program.programs[rank][pos].clone();
    program.programs[rank].push(dup);
    let report = rannc::verify::comm::verify_comm(&program);
    assert_code(
        &report,
        Code::CollectiveOrderMismatch,
        "duplicate one member's collective",
    );
}

#[test]
fn mutation_swapped_collective_order_is_rv060() {
    // two ranks sharing two DP groups issue them in opposite orders —
    // the classic crossed-collective hang, caught statically
    let ar = |group| CommOp::AllReduce { group, bytes: 4 };
    let program = CommProgram {
        programs: vec![vec![ar(0), ar(1)], vec![ar(1), ar(0)]],
        groups: vec![
            CollectiveGroup {
                members: vec![0, 1],
                label: "dp-stage0".into(),
                tp_stage: None,
            },
            CollectiveGroup {
                members: vec![0, 1],
                label: "dp-stage1".into(),
                tp_stage: None,
            },
        ],
        stage_of_rank: vec![Some(0), Some(1)],
    };
    let report = rannc::verify::comm::verify_comm(&program);
    assert_code(
        &report,
        Code::CollectiveOrderMismatch,
        "swap collective order across ranks",
    );
}

#[test]
fn mutation_dropped_recv_is_rv061() {
    let (_g, _cluster, _plan, mut program) = derived_program();
    let (rank, pos) = program
        .programs
        .iter()
        .enumerate()
        .find_map(|(r, prog)| {
            prog.iter()
                .position(|op| matches!(op, CommOp::Recv { .. }))
                .map(|p| (r, p))
        })
        .expect("fixture program must contain a recv");
    program.programs[rank].remove(pos);
    let report = rannc::verify::comm::verify_comm(&program);
    assert_code(&report, Code::UnpairedSendRecv, "drop a recv");
}

#[test]
fn mutation_dropped_send_is_rv061() {
    let (_g, _cluster, _plan, mut program) = derived_program();
    let (rank, pos) = program
        .programs
        .iter()
        .enumerate()
        .find_map(|(r, prog)| {
            prog.iter()
                .position(|op| matches!(op, CommOp::Send { .. }))
                .map(|p| (r, p))
        })
        .expect("fixture program must contain a send");
    program.programs[rank].remove(pos);
    let report = rannc::verify::comm::verify_comm(&program);
    assert_code(&report, Code::UnpairedSendRecv, "drop a send");
}

#[test]
fn mutation_premature_grad_wait_is_rv062() {
    let (_g, _cluster, _plan, mut program) = derived_program();
    // an interior-stage rank waits for its first gradient *before*
    // sending the forward activation that gradient depends on: a
    // cross-rank wait cycle through the downstream stage
    let rank = program
        .programs
        .iter()
        .position(|prog| {
            prog.iter()
                .any(|op| matches!(op, CommOp::Send { tag, .. } if tag.kind == PhaseKind::Forward))
                && prog.iter().any(
                    |op| matches!(op, CommOp::Recv { tag, .. } if tag.kind == PhaseKind::Backward),
                )
        })
        .expect("fixture has an interior pipeline boundary");
    let prog = &mut program.programs[rank];
    let send_pos = prog
        .iter()
        .position(|op| matches!(op, CommOp::Send { tag, .. } if tag.kind == PhaseKind::Forward))
        .unwrap();
    let recv_pos = prog
        .iter()
        .position(|op| matches!(op, CommOp::Recv { tag, .. } if tag.kind == PhaseKind::Backward))
        .unwrap();
    assert!(send_pos < recv_pos, "sane programs send forward first");
    let grad_wait = prog.remove(recv_pos);
    prog.insert(send_pos, grad_wait);
    let report = rannc::verify::comm::verify_comm(&program);
    assert_code(&report, Code::CommDeadlock, "wait for grad before fwd send");
}

#[test]
fn mutation_dead_value_transfer_is_rv063() {
    let (g, _cluster, plan, mut program) = derived_program();
    // bolt on a transfer of a value that lives and dies inside stage 0:
    // the receiver never reads it
    let s0 = &plan.stages[0].set;
    let (victim, bytes) = g
        .values()
        .find_map(|(vid, v)| {
            let produced_in = v.producer.map(|t| s0.contains(t)).unwrap_or(false);
            let consumed_in =
                !v.consumers.is_empty() && v.consumers.iter().all(|&t| s0.contains(t));
            let exported = g.outputs().contains(&vid);
            (produced_in && consumed_in && !exported).then(|| (vid, v.size_bytes()))
        })
        .expect("stage 0 must have an interior value");
    let src = program
        .stage_of_rank
        .iter()
        .position(|s| *s == Some(0))
        .unwrap();
    let dst = program
        .stage_of_rank
        .iter()
        .position(|s| *s == Some(1))
        .unwrap();
    let tag = MsgTag {
        src_stage: 0,
        dst_stage: 1,
        micro: 0,
        kind: PhaseKind::Forward,
    };
    let values = vec![victim.index() as u32];
    program.programs[src].push(CommOp::Send {
        to: dst,
        tag,
        bytes,
        values: values.clone(),
    });
    program.programs[dst].push(CommOp::Recv {
        from: src,
        tag,
        bytes,
        values,
    });
    let report = rannc::verify::comm::verify_transfers(&g, &plan.view(), &program);
    assert_code(&report, Code::DeadTransfer, "transfer an interior value");
}

#[test]
fn mutation_duplicate_delivery_is_rv064() {
    let (g, _cluster, plan, mut program) = derived_program();
    // replay the first boundary transfer: pairing stays consistent, but
    // the same (value, micro) lands on the receiver twice
    let (src, send_pos) = program
        .programs
        .iter()
        .enumerate()
        .find_map(|(r, prog)| {
            prog.iter()
                .position(|op| matches!(op, CommOp::Send { .. }))
                .map(|p| (r, p))
        })
        .expect("fixture program must contain a send");
    let send = program.programs[src][send_pos].clone();
    let CommOp::Send { to, tag, .. } = &send else {
        unreachable!()
    };
    let (to, tag) = (*to, *tag);
    let recv_pos = program.programs[to]
        .iter()
        .position(|op| matches!(op, CommOp::Recv { from, tag: t, .. } if *from == src && *t == tag))
        .expect("matching recv must exist");
    let recv = program.programs[to][recv_pos].clone();
    program.programs[src].push(send);
    program.programs[to].push(recv);
    assert!(
        !rannc::verify::comm::verify_comm(&program).has_errors(),
        "duplicated pair must stay matched"
    );
    let report = rannc::verify::comm::verify_transfers(&g, &plan.view(), &program);
    assert_code(&report, Code::RedundantTransfer, "replay a transfer");
}

#[test]
fn mutation_starved_device_is_rv100() {
    let (g, _cluster, plan) = multi_stage_fixture();
    // re-certify the same plan against a cluster whose devices shrank
    // to 64 MiB: the certificate must name the over-committed device
    let mut small = ClusterSpec::v100_cluster(1);
    small.device = small.device.clone().with_memory(64 << 20);
    let model = ScheduleModel::fill_drain(plan.stages.len(), plan.microbatches);
    let assignment = plan.device_assignment(&small).expect("same device count");
    let (report, certified) = rannc::verify::verify_deep(
        &g,
        &plan.view(),
        &small,
        &model,
        &assignment,
        Precision::FP32,
        true,
    );
    assert_code(&report, Code::CertifiedMemoryOverCapacity, "shrink devices");
    assert!(certified
        .iter()
        .any(|c| c.certified_bytes > c.capacity_bytes));
    let named = report.diagnostics.iter().any(|d| {
        d.code == Code::CertifiedMemoryOverCapacity
            && matches!(d.location, rannc::verify::Location::Device(_))
    });
    assert!(named, "RV100 must name the device:\n{}", report.render());
}

#[test]
fn mutation_shrunken_estimate_is_rv101() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    // the plan claims stage 0 fits in one byte: the certificate calls
    // the estimate broken (a warning — capacity itself still holds)
    plan.stages[0].mem_bytes = 1;
    let (report, _) = rannc::pipeline::deep_verify_plan(
        &g,
        &plan,
        &cluster,
        SyncSchedule::FillDrain,
        Precision::FP32,
    )
    .expect("fixture must deep-verify");
    assert_code(&report, Code::MemoryEstimateDivergence, "shrink mem_bytes");
    assert!(
        !report.has_errors(),
        "RV101 is a warning, not an error:\n{}",
        report.render()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Certified peak is monotone in the number of in-flight
    /// micro-batches and never dips below the single-micro-batch
    /// liveness bound: more stash can only cost more memory.
    #[test]
    fn certified_peak_is_monotone_in_inflight(mb in 1usize..8) {
        let (g, cluster, plan) = multi_stage_fixture();
        let certify = |microbatches: usize| {
            let model = ScheduleModel::fill_drain(plan.stages.len(), microbatches);
            rannc::verify::liveness::certify_memory(
                &g, &plan.view(), &cluster, &model, Precision::FP32, true,
            )
            .1
        };
        let floor = certify(1);
        let lo = certify(mb);
        let hi = certify(mb + 1);
        for ((f, l), h) in floor.iter().zip(&lo).zip(&hi) {
            prop_assert!(
                h.certified_bytes >= l.certified_bytes,
                "stash {} -> {} shrank the certificate: {} -> {}",
                l.stash_depth, h.stash_depth, l.certified_bytes, h.certified_bytes
            );
            prop_assert!(
                l.certified_bytes >= f.certified_bytes,
                "certificate below the single-micro-batch bound: {} < {}",
                l.certified_bytes, f.certified_bytes
            );
        }
    }
}

// ---- clean sweep: bundled models × clusters -------------------------

#[test]
fn all_bundled_models_verify_clean_on_16_and_32_devices() {
    // the acceptance sweep: graph, plan and both schedules must be free
    // of error diagnostics for every bundled model on 16- and 32-device
    // clusters (warnings allowed)
    let graphs = [
        bert_graph(&BertConfig::tiny()),
        gpt_graph(&GptConfig::tiny()),
        t5_graph(&T5Config::tiny()),
        resnet_graph(&ResNetConfig::tiny()),
        mlp_graph(&MlpConfig::deep(256, 256, 8, 10)),
    ];
    for nodes in [2usize, 4] {
        let cluster = ClusterSpec::v100_cluster(nodes);
        for g in &graphs {
            let graph_report = verify_graph(g);
            assert!(
                !graph_report.has_errors(),
                "{} graph on {nodes} nodes:\n{}",
                g.name,
                graph_report.render()
            );
            let plan = Rannc::new(PartitionConfig::new(256).with_k(8))
                .partition(g, &cluster)
                .unwrap_or_else(|e| panic!("{} on {nodes} nodes failed: {e}", g.name));
            let report = verify_plan(g, &plan.view(), &cluster);
            assert!(
                !report.has_errors(),
                "{} plan on {nodes} nodes:\n{}",
                g.name,
                report.render()
            );
            for schedule in [SyncSchedule::FillDrain, SyncSchedule::OneFOneB] {
                let model =
                    rannc::pipeline::schedule_model(schedule, plan.stages.len(), plan.microbatches);
                let sreport = verify_schedule(&model);
                assert!(
                    sreport.is_clean(),
                    "{} {schedule:?} on {nodes} nodes:\n{}",
                    g.name,
                    sreport.render()
                );
                // the deep pass: certified peak within capacity, derived
                // comm program free of races, under both schedules
                let (dreport, certified) = rannc::pipeline::deep_verify_plan(
                    g,
                    &plan,
                    &cluster,
                    schedule,
                    Precision::FP32,
                )
                .unwrap_or_else(|e| panic!("{} {schedule:?} on {nodes} nodes: {e}", g.name));
                assert!(
                    !dreport.has_errors(),
                    "{} {schedule:?} deep on {nodes} nodes:\n{}",
                    g.name,
                    dreport.render()
                );
                for c in &certified {
                    assert!(
                        c.certified_bytes <= c.capacity_bytes,
                        "{} {schedule:?} on {nodes} nodes: certified {} > capacity {} on d{}",
                        g.name,
                        c.certified_bytes,
                        c.capacity_bytes,
                        c.device
                    );
                }
            }
        }
    }
}
