//! Mutation suite for the static verifier.
//!
//! Take a known-good multi-stage plan, apply one seeded corruption at a
//! time, and assert `rannc-verify` reports the *expected* diagnostic
//! code — each mutation is the failure mode its `RV0xx` code names.
//! The dual obligation (every clean bundled model × cluster combination
//! verifies clean) lives at the bottom.

use rannc::prelude::*;
use rannc::verify::{
    verify_graph, verify_plan, verify_plan_structure, verify_schedule, Code, PhaseKind, Report,
    ScheduleModel,
};

/// A genuinely multi-stage plan: a deep MLP on a memory-constrained
/// device so the partitioner is forced to split it.
fn multi_stage_fixture() -> (TaskGraph, ClusterSpec, PartitionPlan) {
    let g = mlp_graph(&MlpConfig::deep(512, 512, 12, 10));
    let mem = (1usize << 30) + 40 * (1 << 20);
    let mut cluster = ClusterSpec::v100_cluster(1);
    cluster.device = cluster.device.clone().with_memory(mem);
    let plan = Rannc::new(PartitionConfig::new(32).with_k(8))
        .partition(&g, &cluster)
        .unwrap();
    assert!(plan.stages.len() >= 2, "fixture must be multi-stage");
    (g, cluster, plan)
}

fn assert_code(report: &Report, code: Code, what: &str) {
    assert!(
        report.has_code(code),
        "mutation `{what}` should raise {code:?}, got:\n{}",
        report.render()
    );
}

#[test]
fn baseline_fixture_is_clean() {
    let (g, cluster, plan) = multi_stage_fixture();
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn mutation_dropped_task_is_coverage_hole() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    let victim = plan.stages[0].set.iter().next().unwrap();
    plan.stages[0].set.remove(victim);
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::CoverageHole, "drop a task");
}

#[test]
fn mutation_reversed_stages_is_backward_edge() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages.reverse();
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::BackwardStageEdge, "reverse stage order");
}

#[test]
fn mutation_inflated_mem_bytes_exceeds_capacity() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].mem_bytes = cluster.device.memory_bytes * 10;
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::MemoryOverCapacity, "inflate mem_bytes");
}

#[test]
fn mutation_moved_interior_task_breaks_convexity() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    // Move stage 1's last task into stage 0: stage 0 then contains both
    // endpoints of a path whose interior lives in stage 1.
    let victim = plan.stages[1].set.iter().last().unwrap();
    plan.stages[1].set.remove(victim);
    plan.stages[0].set.insert(victim);
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::NonConvexStage, "move an interior task");
}

#[test]
fn mutation_duplicated_task_is_double_assignment() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    // Copy a non-constant task of stage 1 into stage 0 as well.
    let non_constant = rannc::graph::traverse::non_constant_tasks(&g);
    let victim = plan.stages[1]
        .set
        .iter()
        .find(|t| non_constant[t.index()])
        .unwrap();
    plan.stages[0].set.insert(victim);
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::DuplicateAssignment, "duplicate a task");
}

#[test]
fn mutation_zero_replicas_is_degenerate() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].replicas = 0;
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::DegenerateCounts, "zero stage replicas");
}

#[test]
fn mutation_foreign_universe_is_mismatch() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    // Rebuild stage 0's set against a universe 5 tasks larger, as if it
    // came from a different build of the model.
    let rebuilt = TaskSet::from_ids(g.num_tasks() + 5, plan.stages[0].set.iter());
    plan.stages[0].set = rebuilt;
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::UniverseMismatch, "foreign universe");
}

#[test]
fn mutation_replica_explosion_oversubscribes_devices() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].replicas += 1000;
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::DeviceOversubscription, "replica explosion");
}

#[test]
fn mutation_inflated_micro_batch_is_infeasible() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].micro_batch = plan.batch_size; // x microbatches > batch
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::MicrobatchInfeasible, "inflate micro_batch");
}

#[test]
fn mutation_emptied_stage_is_reported() {
    let (g, cluster, mut plan) = multi_stage_fixture();
    plan.stages[0].set = TaskSet::new(g.num_tasks());
    let report = verify_plan(&g, &plan.view(), &cluster);
    assert_code(&report, Code::EmptyStage, "empty a stage");
}

#[test]
fn structural_subset_catches_decode_visible_mutations() {
    // the graph-free pass plan_io runs on load sees the same structural
    // corruptions
    let (_, _, mut plan) = multi_stage_fixture();
    plan.replica_factor = 0;
    let report = verify_plan_structure(&plan.view());
    assert_code(&report, Code::DegenerateCounts, "zero replica_factor");
}

// ---- graph mutations ------------------------------------------------

#[test]
fn graph_mutation_cycle_detected() {
    use rannc::graph::{DType, OpKind, TaskGraph, ValueKind};
    // hand-assembled 2-cycle: t0 consumes b and produces a, t1 the reverse
    let mut g = TaskGraph::new("cyclic");
    let x = g.add_value("x", [4], DType::F32, ValueKind::Input);
    let a = g.add_value("a", [4], DType::F32, ValueKind::Activation);
    let b = g.add_value("b", [4], DType::F32, ValueKind::Activation);
    g.add_task("t0", OpKind::Add, vec![x, b], vec![a]).unwrap();
    g.add_task("t1", OpKind::Relu, vec![a], vec![b]).unwrap();
    g.mark_output(b);
    let report = verify_graph(&g);
    assert!(report.has_code(Code::GraphCycle), "{}", report.render());
}

#[test]
fn graph_mutation_bad_shape_detected() {
    use rannc::graph::{DType, OpKind, TaskGraph, ValueKind};
    // a matmul whose recorded output shape contradicts its inputs
    let mut g = TaskGraph::new("bad-matmul");
    let x = g.add_value("x", [4, 8], DType::F32, ValueKind::Input);
    let w = g.add_value("w", [8, 16], DType::F32, ValueKind::Param);
    let y = g.add_value("y", [4, 17], DType::F32, ValueKind::Activation);
    g.add_task("mm", OpKind::MatMul, vec![x, w], vec![y])
        .unwrap();
    g.mark_output(y);
    let report = verify_graph(&g);
    assert!(
        report.has_code(Code::ShapeRuleViolation),
        "{}",
        report.render()
    );
}

#[test]
fn graph_mutation_mislabeled_static_detected() {
    use rannc::graph::{DType, OpKind, TaskGraph, ValueKind};
    // an Activation no task produces: its static marker lies
    let mut g = TaskGraph::new("mislabeled");
    let ghost = g.add_value("ghost", [4], DType::F32, ValueKind::Activation);
    let y = g.add_value("y", [4], DType::F32, ValueKind::Activation);
    g.add_task("t0", OpKind::Relu, vec![ghost], vec![y])
        .unwrap();
    g.mark_output(y);
    let report = verify_graph(&g);
    assert!(
        report.has_code(Code::MislabeledStatic),
        "{}",
        report.render()
    );
}

// ---- schedule mutations ---------------------------------------------

#[test]
fn schedule_mutation_truncated_order_is_incomplete() {
    let mut model = rannc::pipeline::schedule_model(SyncSchedule::FillDrain, 3, 4);
    model.orders[2].pop();
    let report = verify_schedule(&model);
    assert!(
        report.has_code(Code::ScheduleIncomplete),
        "{}",
        report.render()
    );
}

#[test]
fn schedule_mutation_warmup_mismatch_deadlocks() {
    use PhaseKind::{Backward as B, Forward as F};
    // stage 0 runs eager 1F1B (no warmup) while stage 1 expects
    // fill-drain: a cross-stage wait cycle, caught statically
    let model = ScheduleModel {
        stages: 2,
        microbatches: 2,
        orders: vec![
            vec![(F, 0), (B, 0), (F, 1), (B, 1)],
            vec![(F, 0), (F, 1), (B, 0), (B, 1)],
        ],
    };
    let report = verify_schedule(&model);
    assert!(
        report.has_code(Code::ScheduleDeadlock),
        "{}",
        report.render()
    );
}

// ---- clean sweep: bundled models × clusters -------------------------

#[test]
fn all_bundled_models_verify_clean_on_16_and_32_devices() {
    // the acceptance sweep: graph, plan and both schedules must be free
    // of error diagnostics for every bundled model on 16- and 32-device
    // clusters (warnings allowed)
    let graphs = [
        bert_graph(&BertConfig::tiny()),
        gpt_graph(&GptConfig::tiny()),
        t5_graph(&T5Config::tiny()),
        resnet_graph(&ResNetConfig::tiny()),
        mlp_graph(&MlpConfig::deep(256, 256, 8, 10)),
    ];
    for nodes in [2usize, 4] {
        let cluster = ClusterSpec::v100_cluster(nodes);
        for g in &graphs {
            let graph_report = verify_graph(g);
            assert!(
                !graph_report.has_errors(),
                "{} graph on {nodes} nodes:\n{}",
                g.name,
                graph_report.render()
            );
            let plan = Rannc::new(PartitionConfig::new(256).with_k(8))
                .partition(g, &cluster)
                .unwrap_or_else(|e| panic!("{} on {nodes} nodes failed: {e}", g.name));
            let report = verify_plan(g, &plan.view(), &cluster);
            assert!(
                !report.has_errors(),
                "{} plan on {nodes} nodes:\n{}",
                g.name,
                report.render()
            );
            for schedule in [SyncSchedule::FillDrain, SyncSchedule::OneFOneB] {
                let model =
                    rannc::pipeline::schedule_model(schedule, plan.stages.len(), plan.microbatches);
                let sreport = verify_schedule(&model);
                assert!(
                    sreport.is_clean(),
                    "{} {schedule:?} on {nodes} nodes:\n{}",
                    g.name,
                    sreport.render()
                );
            }
        }
    }
}
