//! Determinism suite for the parallel partition-search engine.
//!
//! The engine's contract is *bit-identical plans*: the concurrent
//! `(S, MB)` sweep with cross-DP memoization must choose exactly the
//! plan the historical sequential scan chooses — same stage boundaries,
//! same device allocation, same micro-batching, same objective value to
//! the last bit — for every bundled model and cluster size. Anything
//! less would make planner performance a behaviour change.

use rannc::core::{
    atomic_partition, block_partition, form_stage_seq, form_stage_with, Block, BlockLimits,
    DpSolution, PartitionConfig, Rannc, SearchOptions, VerifyMode,
};
use rannc::graph::TaskGraph;
use rannc::hw::ClusterSpec;
use rannc::models::{
    bert_graph, gpt_graph, mlp_graph, resnet_graph, BertConfig, GptConfig, MlpConfig, ResNetConfig,
    ResNetDepth,
};
use rannc::profile::{Profiler, ProfilerOptions};

fn bundled_models() -> Vec<TaskGraph> {
    vec![
        mlp_graph(&MlpConfig::deep(128, 128, 10, 10)),
        bert_graph(&BertConfig::tiny()),
        gpt_graph(&GptConfig::tiny()),
        resnet_graph(&ResNetConfig::tiny()),
    ]
}

fn prep<'g>(g: &'g TaskGraph, cluster: &ClusterSpec) -> (Profiler<'g>, Vec<Block>) {
    let profiler = Profiler::new(g, cluster.device.clone(), ProfilerOptions::fp32());
    let atomic = atomic_partition(g);
    let blocks = block_partition(
        g,
        &profiler,
        &atomic,
        BlockLimits {
            k: 8,
            mem_limit: cluster.device.memory_bytes,
            profile_batch: 1,
        },
    );
    (profiler, blocks)
}

/// Field-by-field equality, with objective values compared by bit
/// pattern — `==` on floats would let `-0.0 == 0.0` or hide NaN drift.
fn assert_identical(seq: &Option<DpSolution>, par: &Option<DpSolution>, label: &str) {
    match (seq, par) {
        (None, None) => {}
        (Some(s), Some(p)) => {
            assert_eq!(
                s.value.to_bits(),
                p.value.to_bits(),
                "{label}: objective value differs"
            );
            assert_eq!(s.microbatches, p.microbatches, "{label}: MB differs");
            assert_eq!(
                s.replica_factor, p.replica_factor,
                "{label}: replica factor differs"
            );
            assert_eq!(
                s.stages.len(),
                p.stages.len(),
                "{label}: stage count differs"
            );
            for (i, (a, b)) in s.stages.iter().zip(&p.stages).enumerate() {
                assert_eq!(
                    a.block_range, b.block_range,
                    "{label}: stage {i} block range differs"
                );
                assert_eq!(a.devices, b.devices, "{label}: stage {i} devices differ");
                assert_eq!(
                    a.tensor_parallel, b.tensor_parallel,
                    "{label}: stage {i} tensor-parallel degree differs"
                );
                assert_eq!(
                    a.micro_batch, b.micro_batch,
                    "{label}: stage {i} micro-batch differs"
                );
                assert_eq!(a.set, b.set, "{label}: stage {i} task set differs");
                assert_eq!(
                    a.fwd_time.to_bits(),
                    b.fwd_time.to_bits(),
                    "{label}: stage {i} fwd time differs"
                );
                assert_eq!(
                    a.bwd_time.to_bits(),
                    b.bwd_time.to_bits(),
                    "{label}: stage {i} bwd time differs"
                );
            }
        }
        _ => panic!("{label}: one side feasible, the other not"),
    }
}

/// Every bundled model, 16 and 32 devices: the parallel engine's plan is
/// bit-identical to the sequential scan's.
#[test]
fn parallel_engine_matches_sequential_plans() {
    for nodes in [2usize, 4] {
        let cluster = ClusterSpec::v100_cluster(nodes);
        for g in bundled_models() {
            let label = format!("{} @ {} devices", g.name, cluster.total_devices());
            let (profiler, blocks) = prep(&g, &cluster);
            let seq = form_stage_seq(&g, &profiler, &blocks, &cluster, 64);
            let opts = SearchOptions {
                threads: 4,
                shared_cache: true,
                tp_max: 1,
            };
            let (par, stats) = form_stage_with(&g, &profiler, &blocks, &cluster, 64, &opts);
            assert_identical(&seq, &par, &label);
            assert!(seq.is_some(), "{label}: expected feasible");
            assert!(
                stats.stage_cache.hits > 0,
                "{label}: shared cache never hit"
            );
        }
    }
}

/// Oversubscribed thread counts (more workers than candidates or cores)
/// must not change the plan either.
#[test]
fn thread_count_does_not_change_the_plan() {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(2);
    let (profiler, blocks) = prep(&g, &cluster);
    let reference = form_stage_seq(&g, &profiler, &blocks, &cluster, 64);
    for threads in [2usize, 3, 8, 32] {
        let opts = SearchOptions {
            threads,
            shared_cache: true,
            tp_max: 1,
        };
        let (sol, _) = form_stage_with(&g, &profiler, &blocks, &cluster, 64, &opts);
        assert_identical(&reference, &sol, &format!("threads={threads}"));
    }
}

/// The shared cache alone (single-threaded) is also plan-preserving —
/// separates cache effects from scheduling effects if this suite ever
/// fails.
#[test]
fn shared_cache_alone_preserves_plans() {
    for g in bundled_models() {
        let cluster = ClusterSpec::v100_cluster(2);
        let (profiler, blocks) = prep(&g, &cluster);
        let seq = form_stage_seq(&g, &profiler, &blocks, &cluster, 64);
        let opts = SearchOptions {
            threads: 1,
            shared_cache: true,
            tp_max: 1,
        };
        let (cached, _) = form_stage_with(&g, &profiler, &blocks, &cluster, 64, &opts);
        assert_identical(&seq, &cached, &g.name.clone());
    }
}

/// The third search axis: with `tp_max = 4` the concurrent `(S, MB, T)`
/// sweep is still deterministic — 2, 4 and 8 worker threads all return
/// the single-threaded engine's plan bit for bit, tensor-parallel
/// degrees included.
#[test]
fn three_axis_sweep_is_thread_deterministic() {
    for g in bundled_models() {
        let cluster = ClusterSpec::v100_cluster(2);
        let (profiler, blocks) = prep(&g, &cluster);
        let reference = form_stage_with(
            &g,
            &profiler,
            &blocks,
            &cluster,
            64,
            &SearchOptions {
                threads: 1,
                shared_cache: true,
                tp_max: 4,
            },
        )
        .0;
        assert!(reference.is_some(), "{}: expected feasible 3D plan", g.name);
        for threads in [2usize, 4, 8] {
            let opts = SearchOptions {
                threads,
                shared_cache: true,
                tp_max: 4,
            };
            let (sol, _) = form_stage_with(&g, &profiler, &blocks, &cluster, 64, &opts);
            assert_identical(
                &reference,
                &sol,
                &format!("{} tp_max=4 threads={threads}", g.name),
            );
        }
    }
}

/// Passing `tp_max = 1` explicitly is the historical 2D search: the
/// engine's plan still matches the sequential reference scan, so the
/// third axis is strictly opt-in.
#[test]
fn tp_max_one_reproduces_the_sequential_scan() {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(2);
    let (profiler, blocks) = prep(&g, &cluster);
    let seq = form_stage_seq(&g, &profiler, &blocks, &cluster, 64);
    let opts = SearchOptions {
        threads: 4,
        shared_cache: true,
        tp_max: 1,
    };
    let (par, _) = form_stage_with(&g, &profiler, &blocks, &cluster, 64, &opts);
    assert_identical(&seq, &par, "tp_max=1");
    assert!(
        par.iter()
            .flat_map(|s| &s.stages)
            .all(|st| st.tensor_parallel == 1),
        "tp_max=1 must never split a stage"
    );
}

/// Paper-scale grid at 128 devices: the grouped/pruned/arena engine
/// still returns the sequential scan's plan bit-for-bit on the models
/// the paper-scale bench sweeps. The 256-layer BERT is left to the
/// release-mode bench — profiling its 7.4k tasks in a debug test run
/// would dominate the whole tier-1 suite.
#[test]
fn paper_scale_models_match_at_128_devices() {
    let cluster = ClusterSpec::v100_cluster(16); // 128 devices
    let models = [
        ("gpt-96l", gpt_graph(&GptConfig::enlarged(1600, 96))),
        (
            "resnet152x8",
            resnet_graph(&ResNetConfig::new(ResNetDepth::R152, 8)),
        ),
    ];
    for (name, g) in models {
        let label = format!("{name} @ 128 devices");
        let profiler = Profiler::new(&g, cluster.device.clone(), ProfilerOptions::fp32());
        let atomic = atomic_partition(&g);
        let blocks = block_partition(
            &g,
            &profiler,
            &atomic,
            BlockLimits {
                k: 32,
                mem_limit: cluster.device.memory_bytes,
                profile_batch: 1,
            },
        );
        let seq = form_stage_seq(&g, &profiler, &blocks, &cluster, 1024);
        let opts = SearchOptions {
            threads: 4,
            shared_cache: true,
            tp_max: 1,
        };
        let (par, stats) = form_stage_with(&g, &profiler, &blocks, &cluster, 1024, &opts);
        assert_identical(&seq, &par, &label);
        assert!(seq.is_some(), "{label}: expected feasible");
        assert!(
            stats.stage_cache.hits > 0,
            "{label}: shared cache never hit"
        );
    }
}

/// Paper-scale end-to-end under the strict verifier: `Rannc::partition`
/// with `VerifyMode::Fail` must accept the engine's 128-device plan.
#[test]
fn paper_scale_partition_verifies_under_fail_mode() {
    let g = resnet_graph(&ResNetConfig::new(ResNetDepth::R152, 8));
    let cluster = ClusterSpec::v100_cluster(16);
    let plan = Rannc::new(
        PartitionConfig::new(1024)
            .with_k(32)
            .with_verify(VerifyMode::Fail)
            .with_threads(4),
    )
    .partition(&g, &cluster)
    .expect("paper-scale partition verifies");
    assert!(!plan.stages.is_empty(), "expected a feasible plan");
}

/// End-to-end: `Rannc::partition` on the parallel engine passes the
/// static verifier gate (`VerifyMode::Fail`), and its plan matches a
/// sequential-engine partition of the same model.
#[test]
fn full_partition_verifies_under_fail_mode() {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(2);
    let parallel = Rannc::new(
        PartitionConfig::new(64)
            .with_k(8)
            .with_verify(VerifyMode::Fail)
            .with_threads(4),
    );
    let sequential = Rannc::new(
        PartitionConfig::new(64)
            .with_k(8)
            .with_verify(VerifyMode::Fail)
            .with_search(SearchOptions::sequential()),
    );
    let (plan_p, stats) = parallel
        .partition_with_stats(&g, &cluster)
        .expect("parallel partition verifies");
    let plan_s = sequential
        .partition_with_stats(&g, &cluster)
        .expect("sequential partition verifies")
        .0;
    assert_eq!(plan_p.stages.len(), plan_s.stages.len());
    for (a, b) in plan_p.stages.iter().zip(&plan_s.stages) {
        assert_eq!(a.set, b.set);
        assert_eq!(a.replicas, b.replicas);
    }
    assert_eq!(plan_p.microbatches, plan_s.microbatches);
    assert!(stats.search.candidates > 0);
}
