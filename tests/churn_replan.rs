//! Streaming-replanning acceptance suite.
//!
//! The churn contract: the planner survives a *sequence* of cluster
//! losses, every intermediate plan passes the static verifier under
//! [`VerifyMode::Fail`], and the whole sequence replays bit-identically
//! — losses, plans, and campaign decision logs are all functions of the
//! seed and the event stream, never of wall-clock state.

use rannc::core::{PartitionConfig, PartitionPlan, Rannc};
use rannc::faults::ClusterEventTrace;
use rannc::hw::{ClusterSpec, DeviceRank, DeviceSpec};
use rannc::models::{bert_graph, BertConfig};
use rannc::pipeline::{simulate_churn, ChurnPolicy, ChurnReport, ChurnSimConfig};
use rannc::profile::{Profiler, ProfilerOptions};

fn rank(node: usize, local: usize) -> DeviceRank {
    DeviceRank { node, local }
}

/// Field-by-field plan equality with floats compared by bit pattern.
fn assert_plans_identical(a: &PartitionPlan, b: &PartitionPlan, label: &str) {
    assert_eq!(a.replica_factor, b.replica_factor, "{label}: replicas");
    assert_eq!(a.microbatches, b.microbatches, "{label}: MB");
    assert_eq!(
        a.est_iteration_time.to_bits(),
        b.est_iteration_time.to_bits(),
        "{label}: iteration time"
    );
    assert_eq!(a.stages.len(), b.stages.len(), "{label}: stage count");
    for (i, (s, t)) in a.stages.iter().zip(&b.stages).enumerate() {
        assert_eq!(s.set, t.set, "{label}: stage {i} set");
        assert_eq!(s.replicas, t.replicas, "{label}: stage {i} replicas");
        assert_eq!(
            s.fwd_time.to_bits(),
            t.fwd_time.to_bits(),
            "{label}: stage {i} fwd"
        );
    }
}

/// Three consecutive one-at-a-time device losses: each intermediate plan
/// must pass the verifier, and the degraded planner must make progress
/// from the previous plan (never from scratch knowledge of the failure
/// history).
fn lose_three(seq: &[DeviceRank]) -> Vec<PartitionPlan> {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(2);
    // default config: VerifyMode::Fail — partition()/repartition() reject
    // any plan the static verifier flags
    let rannc = Rannc::new(PartitionConfig::new(64).with_k(8));
    let mut plans = vec![rannc.partition(&g, &cluster).expect("initial plan")];
    let mut degraded = cluster;
    for (i, &r) in seq.iter().enumerate() {
        degraded = degraded
            .without_device(r)
            .expect("losses never empty the cluster");
        let prev = plans.last().unwrap();
        let plan = rannc
            .repartition(&g, prev, &degraded)
            .unwrap_or_else(|e| panic!("loss {i} ({r:?}) has no verified plan: {e}"));
        // belt and braces: run the verifier explicitly against the view
        // the plan was priced for
        let report = rannc::verify::verify_plan(&g, &plan.view(), &degraded.planning_view());
        assert!(
            !report.has_errors(),
            "loss {i}: verifier rejected the intermediate plan:\n{}",
            report.render()
        );
        assert!(
            plan.total_devices() <= degraded.planning_view().total_devices(),
            "loss {i}: plan overcommits the surviving fleet"
        );
        plans.push(plan);
    }
    plans
}

#[test]
fn three_consecutive_losses_yield_verified_plans() {
    let seq = [rank(1, 0), rank(0, 3), rank(1, 5)];
    let plans = lose_three(&seq);
    assert_eq!(plans.len(), 4);
    // capacity shrinks monotonically across the loss sequence
    for w in plans.windows(2) {
        assert!(
            w[1].total_devices() <= w[0].total_devices(),
            "a loss cannot grow the usable fleet"
        );
    }
}

#[test]
fn loss_sequence_replays_bit_identically() {
    // resume semantics: replaying the same losses from scratch must
    // reproduce every intermediate plan exactly
    let seq = [rank(1, 0), rank(0, 3), rank(1, 5)];
    let a = lose_three(&seq);
    let b = lose_three(&seq);
    for (i, (pa, pb)) in a.iter().zip(&b).enumerate() {
        assert_plans_identical(pa, pb, &format!("plan {i}"));
    }
}

fn bert_campaign(policy: ChurnPolicy, trace: &ClusterEventTrace) -> ChurnReport {
    let g = bert_graph(&BertConfig::tiny());
    let cluster = ClusterSpec::v100_cluster(2);
    let rannc = Rannc::new(PartitionConfig::new(64).with_k(8));
    let plan = rannc.partition(&g, &cluster).expect("initial plan");
    let profiler = Profiler::new(&g, DeviceSpec::v100_32gb(), ProfilerOptions::fp32());
    let cfg = ChurnSimConfig {
        iterations: 100_000,
        policy,
        ..ChurnSimConfig::default()
    };
    simulate_churn(&rannc, &plan, &profiler, &cluster, trace, &cfg).expect("campaign runs")
}

#[test]
fn fifty_event_campaign_completes_with_verified_plans() {
    // the headline acceptance run: a seeded 50-event churn campaign on
    // bert at 16 devices completes, and — because the Rannc config keeps
    // VerifyMode::Fail — every plan adopted along the way passed the
    // static verifier (an unverifiable replan would degrade, and a
    // cluster-emptying event would surface as a halt)
    let cluster = ClusterSpec::v100_cluster(2);
    let trace = ClusterEventTrace::generate(7, 50, &cluster, 1500);
    assert!(trace.events().len() >= 50);
    let r = bert_campaign(ChurnPolicy::Adaptive, &trace);
    assert!(!r.halted, "a valid event stream never empties the cluster");
    assert_eq!(r.completed_iterations, 100_000);
    assert_eq!(r.decisions.len(), trace.events().len());
    assert!(r.goodput > 0.0);
}

#[test]
fn campaign_decision_log_is_reproducible_from_seed() {
    let cluster = ClusterSpec::v100_cluster(2);
    // regenerating the trace from the seed and re-running the campaign
    // must reproduce the decision log exactly
    let a_trace = ClusterEventTrace::generate(42, 50, &cluster, 1500);
    let b_trace = ClusterEventTrace::generate(42, 50, &cluster, 1500);
    assert_eq!(a_trace.to_json(), b_trace.to_json());
    let a = bert_campaign(ChurnPolicy::Adaptive, &a_trace);
    let b = bert_campaign(ChurnPolicy::Adaptive, &b_trace);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.wall_time.to_bits(), b.wall_time.to_bits());
    assert_eq!(a.goodput.to_bits(), b.goodput.to_bits());
}
