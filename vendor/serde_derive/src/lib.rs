//! Offline stub of `serde_derive`: emits empty marker-trait impls.
//!
//! The workspace only *derives* `Serialize`/`Deserialize`; nothing calls
//! into serde's data model, so an empty impl of the stub traits in the
//! sibling `serde` stub crate is sufficient. The macro extracts the type
//! name from the raw token stream (no `syn`); generic types are rejected
//! with a compile error since no workspace type needs them.

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the `struct`/`enum`/`union` keyword and
/// assert the type is non-generic.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "vendored serde stub supports non-generic types only \
                                     (deriving on `{name}`)"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{kw}`, got {other:?}"),
                }
            }
        }
    }
    panic!("serde derive: no struct/enum/union found in input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
