//! Offline stub of `criterion`: wall-clock micro-benchmarks with the
//! `Criterion`/`BenchmarkGroup`/`Bencher` API surface the workspace's
//! benches use. Each benchmark runs a short warmup, then measures for a
//! fixed budget and prints mean ns/iteration to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement driver passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f` repeatedly; the mean time is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warmup
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        self.samples.push(per_iter);
    }
}

/// Identifier of one parameterized benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        let mean = b.samples.iter().sum::<f64>() / b.samples.len().max(1) as f64;
        println!("{}/{label}: {:.0} ns/iter", self.name, mean);
    }

    /// Benchmark a closure under a label.
    pub fn bench_function(&mut self, label: impl Display, f: impl FnMut(&mut Bencher)) {
        let mut f = f;
        self.run(&label.to_string(), |b| f(b));
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut f = f;
        self.run(&id.label.clone(), |b| f(b, input));
    }

    /// Accepted for API parity; the stub's sampling budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// End the group (layout parity with the real crate).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: name.to_string(),
        };
        let mut f = f;
        group.run("", |b| f(b));
        self
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
