//! Offline stub of `serde`: marker traits plus the derive re-exports.
//!
//! The workspace derives these traits but never serializes through them
//! (plan persistence uses the hand-rolled codec in `rannc-core::plan_io`),
//! so empty marker traits keep every `#[derive(Serialize, Deserialize)]`
//! compiling without the real serde data model.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
