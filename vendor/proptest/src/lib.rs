//! Offline stub of `proptest`: a deterministic, seeded property-testing
//! framework implementing the API subset this workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * case generation is derived from a **fixed seed** mixed with the case
//!   index, so every run of a test samples the identical inputs — failures
//!   reproduce without persistence files;
//! * no shrinking — the failing case's index is reported instead.

pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Deterministic splitmix64 generator used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction; the `proptest!` macro derives the seed
        /// from the case index.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit draw (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Always produces a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over a type's full domain.
    pub struct Any<T>(::std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` constructor.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(::std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: ::std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: ::std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property (panics; the runner reports the case index).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define seeded property tests. Each `fn name(pat in strategy, ...)` item
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::new(
                    0x5eed_0f_ab1e_u64 ^ (case as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let mut __case = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(e) = __case() {
                    panic!("property {} case {case} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}
